"""Unified benchmark harness — one command, one machine-readable artefact.

Runs the benchmark families (core engines, fast path, sharded parallel
pipeline, secure link, key exchange, relay hub, hostile-network
scenario battery) under a single timing convention and writes
``benchmarks/_artifacts/BENCH_pipeline.json``: MB/s per stage, speedups
against the reference engine and against the single-worker fast path,
the worker scaling curve, and the scenario reconciliation ledgers.  CI
uploads the file as an artifact on every run, so the performance
trajectory accumulates PR over PR instead of living in scrollback.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full workload
    PYTHONPATH=src python benchmarks/run_all.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/run_all.py --output out.json

Numbers are honest for the machine they ran on: ``cpu_count`` is
recorded in the artefact, and below four CPUs the parallel section
marks ``best_encrypt_speedup`` as ``"unproven"`` rather than recording
a misleading sub-1x number (the raw scaling curve is still embedded).
The pytest gate for multi-core expectations lives in
``benchmarks/bench_parallel.py`` and is skipped below four CPUs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.key import Key
from repro.core.stream import decrypt_packet, encrypt_packet
from repro.net import SecureLinkClient, SecureLinkServer
from repro.obs import core as obs
from repro.parallel import ParallelCodec

ARTIFACTS = pathlib.Path(__file__).parent / "_artifacts"

#: Key schedule shared by every stage (the bench_fastpath convention).
KEY_SEED = 2005

#: First nonce of every blob; sections use disjoint payloads, not keys,
#: so nonce hygiene across sections is irrelevant to the timing.
NONCE = 0xACE1


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs (warm caches)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _mbps(n_bytes: int, seconds: float) -> float:
    return n_bytes / seconds / 1e6


def bench_core(payload_size: int, repeats: int) -> dict:
    """Reference vs fast engine through the packet codec, one payload."""
    key = Key.generate(seed=KEY_SEED, n_pairs=16)
    payload = bytes(i % 256 for i in range(payload_size))
    encrypt_packet(payload, key, nonce=NONCE, engine="fast")  # warm
    t_ref = _best_of(
        lambda: encrypt_packet(payload, key, nonce=NONCE,
                               engine="reference"), repeats)
    t_fast = _best_of(
        lambda: encrypt_packet(payload, key, nonce=NONCE, engine="fast"),
        repeats)
    packet = encrypt_packet(payload, key, nonce=NONCE, engine="fast")
    t_dec = _best_of(lambda: decrypt_packet(packet, key, engine="fast"),
                     repeats)
    return {
        "payload_bytes": payload_size,
        "reference_encrypt_mb_s": _mbps(payload_size, t_ref),
        "fast_encrypt_mb_s": _mbps(payload_size, t_fast),
        "fast_decrypt_mb_s": _mbps(payload_size, t_dec),
        "fast_vs_reference_speedup": t_ref / t_fast,
    }


def bench_parallel(payload_size: int, chunk_size: int,
                   workers_list: list[int], repeats: int) -> dict:
    """Worker scaling curve for the sharded pipeline on one big payload.

    The baseline is the single-worker *fast engine* inline path
    (``workers=0``), i.e. exactly what PR 2 shipped — the speedup column
    answers "what did sharding buy on this machine".
    """
    key = Key.generate(seed=KEY_SEED, n_pairs=16)
    payload = bytes(i % 256 for i in range(payload_size))
    inline = ParallelCodec(key, chunk_size=chunk_size)
    blob = inline.encrypt_blob(payload, NONCE)  # warm + wire reference
    t_inline = _best_of(lambda: inline.encrypt_blob(payload, NONCE), repeats)
    t_inline_dec = _best_of(lambda: inline.decrypt_blob(blob), repeats)
    curve = []
    for workers in workers_list:
        with ParallelCodec(key, workers=workers,
                           chunk_size=chunk_size) as codec:
            sharded = codec.encrypt_blob(payload, NONCE)
            assert sharded == blob, "parallel wire output diverged"
            t_enc = _best_of(lambda: codec.encrypt_blob(payload, NONCE),
                             repeats)
            t_dec = _best_of(lambda: codec.decrypt_blob(blob), repeats)
        curve.append({
            "workers": workers,
            "encrypt_mb_s": _mbps(payload_size, t_enc),
            "decrypt_mb_s": _mbps(payload_size, t_dec),
            "encrypt_speedup_vs_single": t_inline / t_enc,
            "decrypt_speedup_vs_single": t_inline_dec / t_dec,
        })
    best = max(curve, key=lambda row: row["encrypt_speedup_vs_single"])
    result = {
        "payload_bytes": payload_size,
        "chunk_bytes": chunk_size,
        "single_worker_encrypt_mb_s": _mbps(payload_size, t_inline),
        "single_worker_decrypt_mb_s": _mbps(payload_size, t_inline_dec),
        "scaling": curve,
        "best_encrypt_speedup": best["encrypt_speedup_vs_single"],
        "best_workers": best["workers"],
        "wire_identical_across_workers": True,  # asserted above
    }
    if (os.cpu_count() or 1) < 4:
        # On a 1-2 core box a worker pool cannot demonstrate scaling; a
        # recorded 0.99x would read as a regression when it is merely an
        # untestable claim.  Say so instead of publishing a misleading
        # number (the raw curve stays for the curious).
        result["best_encrypt_speedup"] = "unproven"
        result["scaling_note"] = (
            f"host has {os.cpu_count()} CPU(s); multi-worker speedup "
            f"cannot be demonstrated below 4 cores "
            f"(benchmarks/bench_parallel.py gates it in CI)"
        )
    return result


def bench_net(n_payloads: int, payload_size: int,
              parallel_workers: int) -> dict:
    """Secure-link echo goodput across the transport matrix.

    One number per transport over the same payload set: asyncio TCP
    (plain and, if asked, pool-offloaded), the blocking-socket peers,
    and the in-memory sans-IO pair — the last is the protocol with the
    transport cost at zero, so the spread quantifies what each
    transport layer charges.

    Every transport runs the *fast* cipher engine: the engine is a
    purely local choice (packets are byte-identical across engines), so
    measuring the link layer over the reference engine would only
    re-measure the reference cipher.  ``linkpair_goodput_mb_s`` is the
    gated number (see ``bench_net.py``): the raw sans-IO pair with the
    whole payload burst moving as one chunk per direction, i.e. the
    batched receive path at zero transport cost.
    """
    import asyncio

    from repro.link import (
        LinkPair,
        MemoryLinkServer,
        PayloadReceived,
        SyncLinkClient,
        SyncLinkServer,
    )
    from repro.net.session import SessionConfig

    key = Key.generate(seed=KEY_SEED, n_pairs=16)
    fast = SessionConfig(engine="fast")
    payloads = [bytes((i + j) % 256 for j in range(payload_size))
                for i in range(n_payloads)]

    async def roundtrip(config: SessionConfig) -> float:
        async with SecureLinkServer(key, port=0, config=config) as server:
            async with SecureLinkClient(key, port=server.port,
                                        config=config,
                                        session_id=b"benchsid") as client:
                start = time.perf_counter()
                replies = await client.send_all(payloads)
                elapsed = time.perf_counter() - start
                assert replies == payloads
                return elapsed

    def sync_roundtrip() -> float:
        with SyncLinkServer(key, config=fast, port=0) as server:
            with SyncLinkClient(key, port=server.port, config=fast,
                                session_id=b"benchsid") as client:
                start = time.perf_counter()
                replies = client.send_all(payloads)
                elapsed = time.perf_counter() - start
                assert replies == payloads
                return elapsed

    def memory_roundtrip() -> float:
        with MemoryLinkServer(key, config=fast) as server:
            with server.connect(session_id=b"benchsid") as client:
                start = time.perf_counter()
                replies = client.send_all(payloads)
                elapsed = time.perf_counter() - start
                assert replies == payloads
                return elapsed

    def linkpair_roundtrip() -> float:
        # The raw sans-IO echo: queue the whole burst, then pump — each
        # direction moves as one chunk, so both ends decrypt through
        # Session.decrypt_batch.  This is the LinkPair bench the CI
        # goodput gate watches.
        pair = LinkPair(key, config=fast, session_id=b"benchsid")
        pair.handshake()
        start = time.perf_counter()
        for payload in payloads:
            pair.initiator.send_payload(payload)
        replies: list[bytes] = []
        while len(replies) < len(payloads):
            initiator_events, responder_events = pair.pump()
            for event in responder_events:
                if isinstance(event, PayloadReceived):
                    pair.responder.send_payload(event.payload)  # echo
            for event in initiator_events:
                if isinstance(event, PayloadReceived):
                    replies.append(event.payload)
        elapsed = time.perf_counter() - start
        assert replies == payloads
        return elapsed

    total = sum(len(p) for p in payloads)
    t_plain = asyncio.run(roundtrip(fast))
    result = {
        "payloads": n_payloads,
        "payload_bytes": payload_size,
        "engine": "fast",
        "echo_goodput_mb_s": _mbps(total, t_plain),
        "sync_goodput_mb_s": _mbps(total, sync_roundtrip()),
        "memory_goodput_mb_s": _mbps(total, memory_roundtrip()),
        "linkpair_goodput_mb_s": _mbps(total, linkpair_roundtrip()),
    }
    if parallel_workers > 0:
        config = SessionConfig(engine="fast",
                               parallel_workers=parallel_workers,
                               parallel_threshold=min(payload_size, 32768))
        t_par = asyncio.run(roundtrip(config))
        result["echo_goodput_parallel_mb_s"] = _mbps(total, t_par)
        result["parallel_workers"] = parallel_workers
    return result


def bench_scenario() -> dict:
    """The hostile-network scenario battery, reconciled and summarised.

    Runs :func:`repro.scenario.standard_matrix` plus the stream-mode
    control and records, per scenario: the fault counts injected, the
    delivery/drop ledgers, and whether every invariant reconciled.
    These are correctness-under-fire results, not timings — committing
    them alongside the perf numbers means a PR that breaks hostile-path
    accounting shows up in the artefact diff.
    """
    from repro.scenario import (
        run_scenario,
        run_stream_control,
        standard_matrix,
    )

    results = [run_scenario(entry) for entry in standard_matrix()]
    control = run_stream_control()
    summaries = []
    for result in results:
        ledgers = result.directions.values()
        summaries.append({
            "name": result.name,
            "ok": result.ok,
            "problems": list(result.problems),
            "sent": sum(t["sent"] for t in ledgers),
            "delivered": sum(t["delivered"] for t in ledgers),
            "dropped": sum(sum(t["dropped"].values()) for t in ledgers),
            "faults_injected": sum(
                sum(count for kind, count in t["faults"].items()
                    if kind != "deliver")
                for t in ledgers if t["faults"] is not None),
            "trace_digests": {
                direction: t["trace_digest"]
                for direction, t in result.directions.items()},
        })
    return {
        "scenarios": summaries,
        "stream_control": {
            "ok": control["ok"],
            "messages": control["messages"],
            "wire_bytes": control["wire_bytes"],
            "problems": control["problems"],
        },
        "all_ok": all(row["ok"] for row in summaries) and control["ok"],
    }


def bench_kex(repeats: int) -> dict:
    """Handshake economics: psk vs full X25519 vs ticket resumption.

    Per-connection costs, not per-byte ones — recorded as handshakes
    per second so the artefact diff shows when a change to the ladder,
    the key schedule, or the ticket path moves the connection-setup
    budget.  ``resumption_speedup`` is the number the ticket subsystem
    exists to keep large; benchmarks/bench_kex.py gates it in CI.
    """
    from repro.kex import (
        KexConfig,
        ResumptionTicket,
        TicketVault,
        kex_auth_secret,
    )
    from repro.link import LinkPair

    root = Key.generate(seed=KEY_SEED, n_pairs=16)
    auth = kex_auth_secret(root)
    vault = TicketVault(b"run_all vault")
    common = dict(auth_secret=auth, params=root.params, n_pairs=len(root))
    server = KexConfig(modes=("ecdh", "resume", "psk"), tickets=vault,
                       **common)

    def handshake(kex):
        pair = LinkPair(root, session_id=b"KEXBENCH", responder_root=root,
                        kex=kex, responder_kex=server if kex else None)
        pair.handshake()

    def mint():
        master, tenant = bytes(range(32)), bytes(16)
        return ResumptionTicket(ticket=vault.issue(master, tenant),
                                master_secret=master, tenant_id=tenant)

    rates = {}
    for mode, kex_factory in (
            ("psk", lambda: None),
            ("ecdh", lambda: KexConfig(modes=("ecdh",), **common)),
            ("resume", lambda: KexConfig(modes=("ecdh", "resume"),
                                         ticket=mint(), **common))):
        best = _best_of(lambda: handshake(kex_factory()), repeats)
        rates[f"{mode}_handshakes_per_s"] = 1.0 / best
    return {
        **rates,
        "resumption_speedup": (rates["resume_handshakes_per_s"]
                               / rates["ecdh_handshakes_per_s"]),
    }


def bench_relay(n_links: int, payload_size: int, rounds: int) -> dict:
    """Relay hub economics: ticket ramp rate, fan-out routing, shedding.

    Ramps ``n_links`` ticket-resumed links across two tenants on the
    in-memory hub, routes ``rounds`` payloads through every channel
    group end to end (one re-encrypt per receiver, one decrypt per
    delivery), then floods another ``n_links // 2`` attempts at the
    full hub so the artefact records the rejection rate alongside the
    admission rate.  benchmarks/bench_relay.py gates the overload
    behaviour (shed, don't wedge) in CI.
    """
    from repro.relay import ManualClock, MemoryRelayHub, RelayConfig

    tenants = ("alpha", "beta")
    per_tenant = n_links // 2
    channels = max(1, per_tenant // 8)
    hub = MemoryRelayHub(
        config=RelayConfig(max_links=n_links, max_links_per_tenant=per_tenant,
                           egress_queue_payloads=rounds + 8),
        clock=ManualClock())

    start = time.perf_counter()
    groups = {}
    for tenant in tenants:
        for i in range(per_tenant):
            channel = b"ch-%d" % (i % channels)
            client = hub.connect(tenant, channel=channel,
                                 ticket=hub.mint_ticket(tenant))
            groups.setdefault((tenant, channel), []).append(client)
    ramp_s = time.perf_counter() - start
    links = hub.core.active_links

    payload = bytes(payload_size)
    start = time.perf_counter()
    for _ in range(rounds):
        for members in groups.values():
            members[0].send(payload)
    for members in groups.values():
        for receiver in members[1:]:
            receiver.pump()
    route_s = time.perf_counter() - start
    delivered = hub.core.routed_bytes

    flood_attempts = n_links // 2
    start = time.perf_counter()
    for i in range(flood_attempts):
        hub.connect(tenants[i % 2], ticket=hub.mint_ticket(tenants[i % 2]))
    flood_s = time.perf_counter() - start

    return {
        "links_sustained": links,
        "ramp_links_per_s": links / ramp_s,
        "routed_payloads": hub.core.routed_payloads,
        "routed_mb_s": delivered / route_s / 1e6,
        "channel_groups": len(groups),
        "flood_attempts": flood_attempts,
        "flood_rejects_per_s": flood_attempts / flood_s,
        "shed": hub.shed_by_reason(),
    }


def run(quick: bool, output: pathlib.Path) -> dict:
    """Execute every section and write the JSON artefact."""
    if quick:
        core_size, par_size, chunk = 1 << 14, 1 << 18, 1 << 15
        workers_list, repeats = [1, 2], 2
        net_payloads, net_size = 16, 1 << 12
        relay_links, relay_payload, relay_rounds = 128, 1 << 10, 2
    else:
        core_size, par_size, chunk = 1 << 16, 1 << 20, 1 << 16
        workers_list, repeats = [1, 2, 4], 3
        net_payloads, net_size = 64, 1 << 14
        relay_links, relay_payload, relay_rounds = 512, 1 << 12, 4

    # The whole run executes under a live obs registry, so the artefact
    # carries the observability view of its own workload (op counts,
    # latency quantiles) next to the wall-clock numbers.  The overhead
    # is bounded by benchmarks/bench_obs.py's <=5% gate.
    registry = obs.ObsRegistry()
    previous = obs.set_registry(registry)
    try:
        print(f"[run_all] core engines ({core_size >> 10} KiB)...", flush=True)
        core = bench_core(core_size, repeats)
        print(f"[run_all] parallel pipeline ({par_size >> 10} KiB, "
              f"workers {workers_list})...", flush=True)
        parallel = bench_parallel(par_size, chunk, workers_list, repeats)
        print(f"[run_all] secure link ({net_payloads} x {net_size >> 10} KiB)...",
              flush=True)
        net = bench_net(net_payloads, net_size,
                        parallel_workers=workers_list[-1])
        print("[run_all] key exchange (psk / ecdh / resume)...", flush=True)
        kex = bench_kex(repeats)
        print(f"[run_all] relay hub ({relay_links} links, "
              f"{relay_rounds} x {relay_payload >> 10} KiB fan-out)...",
              flush=True)
        relay = bench_relay(relay_links, relay_payload, relay_rounds)
    finally:
        obs.set_registry(previous)
    snapshot = registry.snapshot()

    # The scenario battery installs its own registry per run, so it sits
    # outside the obs snapshot above on purpose: its numbers are exact
    # reconciliation ledgers, not throughput samples.
    print("[run_all] scenario battery (hostile-network matrix)...",
          flush=True)
    scenario = bench_scenario()

    # How much of the raw cipher budget the link layer delivers as echo
    # goodput.  An echo round trip costs two encrypts and two decrypts
    # per payload byte, so with the fast engine's ~2x decrypt/encrypt
    # asymmetry the hard ceiling is ~1/3; anything close to that means
    # framing, CRC and protocol bookkeeping are amortized to noise.
    # benchmarks/bench_net.py gates this ratio in CI.
    net["goodput_over_core_ratio"] = (
        net["linkpair_goodput_mb_s"] / core["fast_encrypt_mb_s"])

    report = {
        "schema": 5,
        "generated_unix": int(time.time()),
        "quick": quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "core": core,
        "parallel": parallel,
        "net": net,
        "kex": kex,
        "relay": relay,
        "scenario": scenario,
        "obs": snapshot,
    }
    output.parent.mkdir(exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"\nfast engine:      {core['fast_encrypt_mb_s']:8.2f} MB/s encrypt "
          f"({core['fast_vs_reference_speedup']:.1f}x vs reference)")
    for row in parallel["scaling"]:
        print(f"{row['workers']} worker(s):      "
              f"{row['encrypt_mb_s']:8.2f} MB/s encrypt "
              f"({row['encrypt_speedup_vs_single']:.2f}x vs single)")
    if parallel["best_encrypt_speedup"] == "unproven":
        print(f"worker scaling:   unproven ({parallel['scaling_note']})")
    print(f"link goodput:     {net['echo_goodput_mb_s']:8.2f} MB/s echo "
          f"(sync {net['sync_goodput_mb_s']:.2f}, "
          f"memory {net['memory_goodput_mb_s']:.2f})")
    print(f"linkpair goodput: {net['linkpair_goodput_mb_s']:8.2f} MB/s "
          f"({net['goodput_over_core_ratio']:.3f} of fast-engine encrypt)")
    print(f"kex handshakes:   {kex['ecdh_handshakes_per_s']:8.1f}/s full "
          f"x25519, {kex['resume_handshakes_per_s']:.1f}/s resumed "
          f"({kex['resumption_speedup']:.1f}x)")
    print(f"relay hub:        {relay['links_sustained']:6d} links "
          f"({relay['ramp_links_per_s']:.0f}/s ramp), "
          f"{relay['routed_mb_s']:.2f} MB/s fan-out, "
          f"{relay['flood_rejects_per_s']:.0f}/s sheds under flood")
    n_ok = sum(1 for row in scenario["scenarios"] if row["ok"])
    print(f"scenario battery: {n_ok}/{len(scenario['scenarios'])} scenarios "
          f"reconciled, stream control "
          f"{'ok' if scenario['stream_control']['ok'] else 'FAILED'}")
    n_series = sum(len(snapshot[kind])
                   for kind in ("counters", "gauges", "histograms"))
    print(f"obs snapshot:     {n_series} series embedded")
    print(f"\nwrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (seconds, not minutes)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=ARTIFACTS / "BENCH_pipeline.json")
    args = parser.parse_args(argv)
    run(args.quick, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
