"""Experiment E5: Table 1 — throughput / area / functional density.

Prints the literature rows next to our measured rows under the paper's
own accounting, asserts the shape claims (who wins), and reports the
alternative accountings the paper glosses over.
"""

from repro.analysis.density import render_table
from repro.analysis.literature import LITERATURE_TABLE1


def test_table1_paper_accounting(benchmark, table1_paper_accounting, emit):
    table = table1_paper_accounting
    emit("table1_paper_accounting", table.render())

    measured = {row.name: row for row in table.measured}
    literature = {e.name: e for e in LITERATURE_TABLE1}

    # Shape claim 1: the modified design dominates the serial baseline.
    assert measured["MHHEA"].density > measured["HHEA"].density
    # Shape claim 2: the stream design holds the highest density
    # ("the highest functional density, if we exclude the YAEA").
    assert measured["YAEA-like"].density > measured["MHHEA"].density
    # Shape claim 3: measured MHHEA density within 3x of the paper's.
    ratio = measured["MHHEA"].density / literature["MHHEA"].density
    assert 1 / 3 <= ratio <= 3, f"density ratio {ratio:.2f} out of band"

    # time the cheap part: row assembly from cached flows
    def rebuild_rows():
        return render_table(table.rows)

    benchmark(rebuild_rows)


def test_table1_measured_accounting(benchmark, table1_measured_accounting, emit):
    """The honest-information accounting: bits actually delivered per
    cycle, including all overheads."""
    table = table1_measured_accounting
    emit("table1_measured_accounting", table.render())
    measured = {row.name: row for row in table.measured}
    # even under honest accounting the stream design stays on top
    assert measured["YAEA-like"].throughput_mbps > measured["MHHEA"].throughput_mbps
    benchmark(lambda: render_table(table.rows))
