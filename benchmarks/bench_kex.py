"""Key-exchange cost: full X25519 handshakes vs ticket resumption.

The hello-v2 exchange buys authentication and forward secrecy with two
pure-Python Montgomery-ladder scalar multiplications per side — by far
the most expensive thing the link ever does.  Resumption exists
precisely to amortise that: a returning client redeems a sealed ticket
and derives fresh session keys with nothing but HKDF.  These benches
pin the economics:

* the full handshake completes at a usable rate (it is a per-connection
  cost, not a per-byte one);
* resumption is decisively cheaper than the full exchange — if a
  refactor ever erases that gap, the ticket machinery has lost its
  reason to exist and this gate fails.
"""

import time

from repro.core.key import Key
from repro.kex import (
    KexConfig,
    ResumptionTicket,
    TicketVault,
    kex_auth_secret,
)
from repro.link import LinkPair

KEY_SEED = 2005


def _client_kex(root, ticket=None):
    return KexConfig(auth_secret=kex_auth_secret(root),
                     modes=("ecdh", "resume"), params=root.params,
                     n_pairs=len(root), ticket=ticket)


def _server_kex(root, vault):
    return KexConfig(auth_secret=kex_auth_secret(root),
                     modes=("ecdh", "resume", "psk"), params=root.params,
                     n_pairs=len(root), tickets=vault)


def _handshake(root, *, kex=None, responder_kex=None):
    pair = LinkPair(root, session_id=b"KEXBENCH", responder_root=root,
                    kex=kex, responder_kex=responder_kex)
    pair.handshake()
    return pair


def _mint_ticket(vault) -> ResumptionTicket:
    """Seal a resumption ticket directly — what a prior ecdh handshake
    would have left the client holding, minus the ecdh cost."""
    master = bytes(range(32))
    tenant = bytes(16)
    return ResumptionTicket(ticket=vault.issue(master, tenant),
                            master_secret=master, tenant_id=tenant)


def _rate(fn, *, min_rounds: int = 5) -> float:
    """Handshakes per second, best-of over ``min_rounds`` single runs."""
    best = float("inf")
    for _ in range(min_rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return 1.0 / best


def test_full_handshake_rate(benchmark, emit):
    root = Key.generate(seed=KEY_SEED, n_pairs=16)
    vault = TicketVault(b"bench vault")

    def full():
        pair = _handshake(root, kex=_client_kex(root),
                          responder_kex=_server_kex(root, vault))
        assert pair.initiator.kex_mode == "ecdh"

    benchmark(full)


def test_resumption_speedup_gate(emit):
    root = Key.generate(seed=KEY_SEED, n_pairs=16)
    vault = TicketVault(b"bench vault")

    def full():
        pair = _handshake(root, kex=_client_kex(root),
                          responder_kex=_server_kex(root, vault))
        assert pair.initiator.kex_mode == "ecdh"

    def resume():
        pair = _handshake(root,
                          kex=_client_kex(root, ticket=_mint_ticket(vault)),
                          responder_kex=_server_kex(root, vault))
        assert pair.initiator.kex_mode == "resume"

    def psk():
        pair = _handshake(root)
        assert pair.initiator.kex_mode == "psk"

    ecdh_rate = _rate(full)
    resume_rate = _rate(resume)
    psk_rate = _rate(psk)
    speedup = resume_rate / ecdh_rate

    emit("kex_handshakes", "\n".join([
        f"psk (hello-v1)   : {psk_rate:8.1f} handshakes/s",
        f"ecdh (hello-v2)  : {ecdh_rate:8.1f} handshakes/s",
        f"ticket resumption: {resume_rate:8.1f} handshakes/s "
        f"({speedup:.1f}x vs full exchange)",
    ]))

    # The gate: resumption must stay decisively cheaper than the full
    # exchange it replaces (the ladder costs dwarf everything else).
    assert speedup >= 2.0, (
        f"resumption only {speedup:.2f}x faster than the full handshake; "
        f"the ticket path has stopped paying for itself"
    )
    # And the full handshake must stay usable as a per-connection cost.
    assert ecdh_rate >= 1.0, (
        f"full kex handshake below 1/s ({ecdh_rate:.2f}); "
        f"the pure-Python ladder has regressed pathologically"
    )
