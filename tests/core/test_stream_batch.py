"""Batch packet entry points (``encrypt_packets`` / ``decrypt_packets``).

The executor parameter is deliberately duck-typed: anything with
``Executor.map`` semantics must produce byte-identical output to the
inline loop, because each packet is a pure function of its inputs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.core.errors import CipherFormatError
from repro.core.stream import (
    decrypt_packets,
    encrypt_packet,
    encrypt_packets,
)

PAYLOADS = [b"", b"a", b"batch payload " * 9, bytes(range(256))]
NONCES = [0x1001, 0x1002, 0x1003, 0x1004]


class TestInlineBatch:
    def test_matches_single_packet_calls(self, key16):
        packets = encrypt_packets(PAYLOADS, key16, NONCES, engine="fast")
        assert packets == [
            encrypt_packet(p, key16, nonce=n, engine="fast")
            for p, n in zip(PAYLOADS, NONCES)
        ]

    def test_roundtrip(self, key16):
        packets = encrypt_packets(PAYLOADS, key16, NONCES)
        assert decrypt_packets(packets, key16) == PAYLOADS

    def test_length_mismatch_raises(self, key16):
        with pytest.raises(ValueError):
            encrypt_packets(PAYLOADS, key16, NONCES[:-1])

    def test_bad_nonce_propagates(self, key16):
        with pytest.raises(CipherFormatError):
            encrypt_packets([b"x"], key16, [0])

    def test_damage_propagates_from_decrypt(self, key16):
        packets = encrypt_packets(PAYLOADS, key16, NONCES)
        packets[1] = packets[1][:-1]
        with pytest.raises(CipherFormatError):
            decrypt_packets(packets, key16)


class TestExecutorBatch:
    def test_thread_pool_is_byte_identical(self, key16):
        inline = encrypt_packets(PAYLOADS, key16, NONCES, engine="fast")
        with ThreadPoolExecutor(max_workers=2) as executor:
            threaded = encrypt_packets(PAYLOADS, key16, NONCES,
                                       engine="fast", executor=executor)
            assert threaded == inline
            assert decrypt_packets(threaded, key16,
                                   executor=executor) == PAYLOADS

    def test_process_pool_is_byte_identical(self, key16):
        inline = encrypt_packets(PAYLOADS, key16, NONCES, engine="fast")
        with ProcessPoolExecutor(max_workers=2) as executor:
            forked = encrypt_packets(PAYLOADS, key16, NONCES,
                                     engine="fast", executor=executor)
            assert forked == inline
            assert decrypt_packets(forked, key16,
                                   executor=executor) == PAYLOADS

    def test_engines_agree_through_executor(self, key16):
        with ThreadPoolExecutor(max_workers=2) as executor:
            fast = encrypt_packets(PAYLOADS, key16, NONCES, engine="fast",
                                   executor=executor)
            reference = encrypt_packets(PAYLOADS, key16, NONCES,
                                        engine="reference",
                                        executor=executor)
        assert fast == reference
