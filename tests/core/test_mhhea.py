"""Tests for the MHHEA reference cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import mhhea
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder
from repro.rtl.cycle_model import ScriptedVectorSource
from repro.util.bits import bytes_to_bits, extract_field, int_to_bits
from repro.util.lfsr import Lfsr


class TestFig8WorkedExample:
    """The paper's only fully worked numerical example, bit for bit."""

    def test_single_step(self, fig8_key):
        source = ScriptedVectorSource([0xCA06])
        trace = TraceRecorder()
        bits = int_to_bits(0x48D0, 16)[:4]  # the 4 bits the window takes
        vectors = mhhea.encrypt_bits(bits, fig8_key, source, trace=trace)
        assert vectors == [0xCA02]
        record = trace[0]
        assert (record.kn1, record.kn2) == (2, 5)
        assert record.bits_consumed == 4

    def test_decrypts_back(self, fig8_key):
        bits = int_to_bits(0x48D0, 16)[:4]
        vectors = mhhea.encrypt_bits(bits, fig8_key, ScriptedVectorSource([0xCA06]))
        assert mhhea.decrypt_bits(vectors, fig8_key, 4) == bits


class TestRoundTrips:
    def test_bytes_roundtrip(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        message = cipher.encrypt(b"attack at dawn", seed=0xBEEF)
        assert cipher.decrypt(message) == b"attack at dawn"

    def test_empty_message(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        message = cipher.encrypt(b"")
        assert message.vectors == ()
        assert cipher.decrypt(message) == b""

    def test_single_byte(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        assert cipher.decrypt(cipher.encrypt(b"\x00")) == b"\x00"
        assert cipher.decrypt(cipher.encrypt(b"\xff")) == b"\xff"

    @given(st.binary(max_size=40), st.integers(1, 0xFFFF), st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, payload, seed, key_seed):
        key = Key.generate(seed=key_seed)
        cipher = mhhea.MhheaCipher(key)
        assert cipher.decrypt(cipher.encrypt(payload, seed=seed)) == payload

    @given(st.lists(st.integers(0, 1), max_size=70), st.integers(1, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_bit_level_roundtrip_any_length(self, bits, seed):
        key = Key.generate(seed=11)
        vectors = mhhea.encrypt_bits(bits, key, Lfsr(16, seed=seed))
        assert mhhea.decrypt_bits(vectors, key, len(bits)) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=70))
    @settings(max_examples=25, deadline=None)
    def test_framed_roundtrip(self, bits):
        key = Key.generate(seed=13)
        vectors = mhhea.encrypt_bits(
            bits, key, Lfsr(16, seed=77), frame_bits=16
        )
        assert mhhea.decrypt_bits(vectors, key, len(bits), frame_bits=16) == bits

    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_roundtrip_across_vector_widths(self, width):
        params = VectorParams(width)
        key = Key.generate(seed=21, params=params)
        bits = [i % 2 for i in range(97)]
        vectors = mhhea.encrypt_bits(bits, key, Lfsr(width, seed=5), params)
        assert mhhea.decrypt_bits(vectors, key, len(bits), params) == bits

    def test_short_key_cycles(self):
        key = Key([(1, 6), (0, 3), (5, 5)])
        bits = [1, 0] * 40
        vectors = mhhea.encrypt_bits(bits, key, Lfsr(16, seed=4))
        assert mhhea.decrypt_bits(vectors, key, len(bits)) == bits


class TestCiphertextStructure:
    def test_scramble_half_survives_embedding(self, key16):
        """The high half of every vector is never overwritten — the
        property that makes keyed decryption possible at all."""
        source = Lfsr(16, seed=0x1234)
        shadow = Lfsr(16, seed=0x1234)
        bits = bytes_to_bits(b"some plaintext data")
        vectors = mhhea.encrypt_bits(bits, key16, source)
        for vector in vectors:
            original = shadow.next_word()
            assert extract_field(vector, 15, 8) == extract_field(original, 15, 8)

    def test_data_scrambling_is_applied(self):
        """With k1 != 0, embedded bits differ from raw message bits."""
        key = Key([(5, 7)])  # k1 = 5 = 0b101 -> pattern 1,0,1
        source = ScriptedVectorSource([0x0000])
        vectors = mhhea.encrypt_bits([0, 0, 0], key, source)
        # window from scramble_pair((5,7), 0) = (5,7); pattern k1 bits
        assert extract_field(vectors[0], 7, 5) == 0b101

    def test_different_seeds_give_different_ciphertexts(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        a = cipher.encrypt(b"same message", seed=1)
        b = cipher.encrypt(b"same message", seed=2)
        assert a.vectors != b.vectors

    def test_wrong_key_garbles(self, key16):
        """A wrong key either mis-extracts the bits or desynchronises the
        window walk entirely (strict extraction then underruns)."""
        from repro.core.errors import CipherFormatError

        cipher = mhhea.MhheaCipher(key16)
        message = cipher.encrypt(b"confidential payload!", seed=42)
        other = mhhea.MhheaCipher(Key.generate(seed=31337))
        try:
            recovered = other.decrypt(message)
        except CipherFormatError:
            return  # desynchronised: also a failure to decrypt
        assert recovered != b"confidential payload!"

    def test_expansion_ratio(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        message = cipher.encrypt(b"x" * 64)
        # 16-bit vectors carrying at most 8 bits each: expansion >= 2
        assert message.expansion >= 2.0


class TestApiValidation:
    def test_params_mismatch_rejected(self):
        key = Key.generate(seed=1)
        with pytest.raises(ValueError):
            mhhea.MhheaCipher(key, VectorParams(32))

    def test_width_mismatch_on_decrypt(self, key16):
        cipher = mhhea.MhheaCipher(key16)
        message = cipher.encrypt(b"abc")
        fake = mhhea.EncryptedMessage(message.vectors, message.n_bits, width=32)
        with pytest.raises(ValueError):
            cipher.decrypt(fake)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            mhhea.EncryptedMessage((), -1, 16)

    def test_trace_recording(self, key16):
        trace = TraceRecorder()
        cipher = mhhea.MhheaCipher(key16)
        cipher.encrypt(b"abcd", seed=9, trace=trace)
        assert trace.total_bits() == 32
