"""Engine-invariant property tests, enforced on *both* implementations.

Three families of invariants, per the engine contract:

* round trip — ``extract(embed(m)) == m`` for any message, key, width
  and framing;
* ciphertext length law — every vector carries at least one message bit
  and at most ``max_window``, so ``ceil(n / max_window) <= len(vectors)
  <= n``, and both engines agree on the exact count;
* pathological policies — an injected window or data policy that breaks
  the contract raises a clean :class:`CipherFormatError` before any
  corrupted vector can escape (no silent corruption), identically in
  the reference and fast engines.
"""

import math
import os
import random

import pytest

from repro.core import engine, fastpath, hhea, mhhea
from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.util.lfsr import Lfsr

SEED = int(os.environ.get("REPRO_TEST_SEED", "20050307"))

ENGINES = ("reference", "fast")
CIPHERS = {"hhea": hhea, "mhhea": mhhea}


def _embed(engine_name, bits, key, source, window_policy, data_policy,
           params, frame_bits=None):
    """Run the policy-level embed of either engine implementation."""
    if engine_name == "fast":
        return fastpath.embed_stream(bits, key, source, window_policy,
                                     data_policy, params, frame_bits)
    return engine.embed_stream(bits, key, source, window_policy, data_policy,
                               params, frame_bits=frame_bits)


def _extract(engine_name, vectors, key, n_bits, window_policy, data_policy,
             params, frame_bits=None):
    if engine_name == "fast":
        return fastpath.extract_stream(vectors, key, n_bits, window_policy,
                                       data_policy, params,
                                       frame_bits=frame_bits)
    return engine.extract_stream(vectors, key, n_bits, window_policy,
                                 data_policy, params, frame_bits=frame_bits)


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("cipher", sorted(CIPHERS))
class TestRoundTrip:
    def test_extract_inverts_embed(self, engine_name, cipher):
        mod = CIPHERS[cipher]
        rng = random.Random(f"{SEED}:roundtrip:{cipher}:{engine_name}")
        for _ in range(200):
            width = rng.choice((4, 8, 16, 32))
            params = VectorParams(width)
            key = Key.generate(rng.randrange(1 << 32),
                               rng.randint(1, 16), params)
            bits = [rng.randint(0, 1) for _ in range(rng.randint(0, 200))]
            frame_bits = rng.choice((None, 16))
            vectors = mod.encrypt_bits(bits, key, Lfsr(width, seed=1), params,
                                       frame_bits=frame_bits,
                                       engine=engine_name)
            assert mod.decrypt_bits(vectors, key, len(bits), params,
                                    frame_bits=frame_bits,
                                    engine=engine_name) == bits


@pytest.mark.parametrize("cipher", sorted(CIPHERS))
class TestCiphertextLengthLaw:
    def test_vector_count_bounds_and_engine_agreement(self, cipher):
        mod = CIPHERS[cipher]
        rng = random.Random(f"{SEED}:length:{cipher}")
        for _ in range(200):
            width = rng.choice((8, 16, 32))
            params = VectorParams(width)
            key = Key.generate(rng.randrange(1 << 32),
                               rng.randint(1, 16), params)
            n = rng.randint(1, 160)
            bits = [rng.randint(0, 1) for _ in range(n)]
            counts = set()
            for engine_name in ENGINES:
                vectors = mod.encrypt_bits(bits, key, Lfsr(width, seed=3),
                                           params, engine=engine_name)
                # Every vector carries 1..max_window message bits.
                assert math.ceil(n / params.max_window) <= len(vectors) <= n
                counts.add(len(vectors))
            assert len(counts) == 1

    def test_empty_message_is_empty_ciphertext(self, cipher):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=4)
        for engine_name in ENGINES:
            assert mod.encrypt_bits([], key, Lfsr(16, seed=1),
                                    engine=engine_name) == []
            assert mod.decrypt_bits([], key, 0, engine=engine_name) == []


def window_policy_constant(low, high):
    def policy(pair, vector, params):
        return low, high
    return policy


def data_policy_constant(value):
    def policy(pair, q):
        return value
    return policy


ZERO_DATA = data_policy_constant(0)
LEGAL_WINDOW = window_policy_constant(0, 3)


@pytest.mark.parametrize("engine_name", ENGINES)
class TestPathologicalPolicies:
    """Broken injected policies must fail loudly — in both engines."""

    @pytest.mark.parametrize("low,high", [(5, 9), (-1, 2), (4, 1), (0, 8)])
    def test_illegal_window_raises_cleanly_on_embed(self, engine_name, low, high):
        key = Key.generate(seed=9)
        with pytest.raises(CipherFormatError, match="illegal window"):
            _embed(engine_name, [1, 0, 1], key, Lfsr(16, seed=1),
                   window_policy_constant(low, high), ZERO_DATA, PAPER_PARAMS)

    @pytest.mark.parametrize("low,high", [(5, 9), (-1, 2), (4, 1)])
    def test_illegal_window_raises_cleanly_on_extract(self, engine_name, low, high):
        key = Key.generate(seed=9)
        with pytest.raises(CipherFormatError, match="illegal window"):
            _extract(engine_name, [0x1234], key, 3,
                     window_policy_constant(low, high), ZERO_DATA, PAPER_PARAMS)

    @pytest.mark.parametrize("bad_bit", [2, -1, None, "1"])
    def test_non_binary_data_policy_raises_cleanly(self, engine_name, bad_bit):
        key = Key.generate(seed=9)
        with pytest.raises(CipherFormatError, match="data-bit policy"):
            _embed(engine_name, [1, 0, 1], key, Lfsr(16, seed=1),
                   LEGAL_WINDOW, data_policy_constant(bad_bit), PAPER_PARAMS)
        with pytest.raises(CipherFormatError, match="data-bit policy"):
            _extract(engine_name, [0x5555], key, 3, LEGAL_WINDOW,
                     data_policy_constant(bad_bit), PAPER_PARAMS)

    def test_legal_injected_policies_round_trip(self, engine_name):
        # Sanity: the policy plumbing itself works when the contract holds.
        key = Key.generate(seed=9)
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        data = data_policy_constant(1)  # invert every bit
        vectors = _embed(engine_name, bits, key, Lfsr(16, seed=2),
                         LEGAL_WINDOW, data, PAPER_PARAMS)
        assert _extract(engine_name, vectors, key, len(bits), LEGAL_WINDOW,
                        data, PAPER_PARAMS) == bits

    def test_no_silent_corruption_before_raise(self, engine_name):
        # The embed must raise, not return a vector list with garbage in
        # it: a policy that misbehaves only on the second window still
        # produces *no* output.
        key = Key.generate(seed=9)
        calls = {"n": 0}

        def flaky_window(pair, vector, params):
            calls["n"] += 1
            return (0, 3) if calls["n"] == 1 else (5, 99)

        with pytest.raises(CipherFormatError):
            _embed(engine_name, [1] * 10, key, Lfsr(16, seed=1),
                   flaky_window, ZERO_DATA, PAPER_PARAMS)


@pytest.mark.parametrize("cipher", sorted(CIPHERS))
class TestArgumentValidation:
    """Both engines reject the same malformed arguments."""

    def test_bad_engine_name(self, cipher):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=1)
        with pytest.raises(ValueError, match="engine"):
            mod.encrypt_bits([1], key, Lfsr(16, seed=1), engine="turbo")
        with pytest.raises(ValueError, match="engine"):
            mod.decrypt_bits([0], key, 1, engine="turbo")

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_bad_frame_bits(self, cipher, engine_name):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=1)
        with pytest.raises(ValueError, match="frame_bits"):
            mod.encrypt_bits([1], key, Lfsr(16, seed=1), frame_bits=0,
                             engine=engine_name)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_negative_n_bits(self, cipher, engine_name):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=1)
        with pytest.raises(ValueError, match="non-negative"):
            mod.decrypt_bits([], key, -1, engine=engine_name)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_bad_message_bit(self, cipher, engine_name):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=1)
        with pytest.raises(ValueError):
            mod.encrypt_bits([2], key, Lfsr(16, seed=1), engine=engine_name)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_oversized_vector_rejected(self, cipher, engine_name):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=1)
        with pytest.raises(ValueError):
            mod.decrypt_bits([1 << 16], key, 1, engine=engine_name)

    def test_trace_falls_back_to_reference(self, cipher):
        # Trace recording is a reference-engine feature; engine="fast"
        # with a trace must still produce correct (identical) output.
        from repro.core.trace import TraceRecorder

        mod = CIPHERS[cipher]
        key = Key.generate(seed=6)
        bits = [1, 0] * 10
        trace = TraceRecorder()
        traced = mod.encrypt_bits(bits, key, Lfsr(16, seed=4), trace=trace,
                                  engine="fast")
        plain = mod.encrypt_bits(bits, key, Lfsr(16, seed=4), engine="fast")
        assert traced == plain
        assert len(trace) == len(traced)
