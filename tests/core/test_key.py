"""Tests for key handling and the location-scrambling arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import KeyError_
from repro.core.key import MAX_PAIRS, Key, KeyPair, scramble_pair
from repro.core.params import PAPER_PARAMS, VectorParams


class TestKeyPair:
    def test_sorted_swaps(self):
        assert KeyPair(5, 2).sorted() == KeyPair(2, 5)

    def test_sorted_keeps_ordered(self):
        pair = KeyPair(1, 6)
        assert pair.sorted() is pair

    def test_span(self):
        assert KeyPair(3, 3).span == 1
        assert KeyPair(7, 0).span == 8

    def test_validate_range(self):
        with pytest.raises(KeyError_):
            KeyPair(8, 0).validate(PAPER_PARAMS)
        with pytest.raises(KeyError_):
            KeyPair(0, -1).validate(PAPER_PARAMS)

    def test_validate_type(self):
        with pytest.raises(KeyError_):
            KeyPair(True, 0).validate(PAPER_PARAMS)


class TestKey:
    def test_rejects_empty(self):
        with pytest.raises(KeyError_):
            Key([])

    def test_rejects_too_many_pairs(self):
        with pytest.raises(KeyError_):
            Key([(0, 0)] * (MAX_PAIRS + 1))

    def test_accepts_tuples(self):
        key = Key([(1, 2), (3, 4)])
        assert key.pairs[0] == KeyPair(1, 2)

    def test_round_robin_pairing(self):
        key = Key([(0, 1), (2, 3), (4, 5)])
        assert key.pair(0) == key.pair(3) == KeyPair(0, 1)
        assert key.pair(5) == KeyPair(4, 5)

    def test_len_and_iter(self):
        key = Key([(1, 1), (2, 2)])
        assert len(key) == 2
        assert list(key) == [KeyPair(1, 1), KeyPair(2, 2)]

    def test_equality_and_hash(self):
        a = Key([(1, 2)])
        b = Key([(1, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Key([(2, 1)])

    def test_generate_deterministic(self):
        assert Key.generate(seed=3) == Key.generate(seed=3)
        assert Key.generate(seed=3) != Key.generate(seed=4)

    def test_generate_bad_count(self):
        with pytest.raises(KeyError_):
            Key.generate(seed=1, n_pairs=0)
        with pytest.raises(KeyError_):
            Key.generate(seed=1, n_pairs=17)

    def test_generate_respects_params(self):
        params = VectorParams(32)
        key = Key.generate(seed=1, params=params)
        for pair in key:
            pair.validate(params)


class TestSerialisation:
    def test_hex_roundtrip(self):
        key = Key.generate(seed=5)
        assert Key.from_hex(key.to_hex()) == key

    def test_hex_format(self):
        assert Key([(0, 3), (7, 1)]).to_hex() == "03:71"

    def test_from_hex_rejects_garbage(self):
        with pytest.raises(KeyError_):
            Key.from_hex("zz")
        with pytest.raises(KeyError_):
            Key.from_hex("013")
        with pytest.raises(KeyError_):
            Key.from_hex("")

    def test_from_hex_rejects_out_of_range_values(self):
        with pytest.raises(KeyError_):
            Key.from_hex("09")  # 9 > key_max for 16-bit vectors

    def test_bytes_roundtrip(self):
        key = Key.generate(seed=8)
        assert Key.from_bytes(key.to_bytes()) == key

    def test_from_bytes_rejects_empty(self):
        with pytest.raises(KeyError_):
            Key.from_bytes(b"")

    def test_wide_params_reject_hex(self):
        params = VectorParams(64)
        key = Key([(0, 31)], params)
        with pytest.raises(KeyError_):
            key.to_hex()


class TestScramblePair:
    def test_fig8_worked_example(self):
        # V=0xCA06, K=(0,3): slice 010b, KN1=2, KN2=2+3=5 (paper Fig. 8).
        assert scramble_pair(KeyPair(0, 3), 0xCA06) == (2, 5)

    def test_unsorted_pair_gives_same_result(self):
        assert scramble_pair(KeyPair(3, 0), 0xCA06) == (2, 5)

    def test_truncation_to_three_bits(self):
        # K=(0,7): slice is the whole high byte; only 3 bits survive.
        v = 0xFF00  # slice = 0xFF -> truncates to 0b111 = 7
        kn1, kn2 = scramble_pair(KeyPair(0, 7), v)
        assert (kn1, kn2) == (6, 7)  # kn1=7, kn2=(7+7)%8=6, swapped

    def test_no_wrap_keeps_window_width(self):
        pair = KeyPair(4, 7)  # span 3
        v = 0x7000  # slice V[15:12] = 0b0111, xor 4 = 3
        assert scramble_pair(pair, v) == (3, 6)

    def test_wraparound_changes_window_width(self):
        # slice ^ k1 = 6, span 3: KN2 = (6+3) mod 8 = 1 < KN1, so the
        # swap fires and the window widens from 4 to 6 bits.
        pair = KeyPair(4, 7)
        v = 0x2000  # slice V[15:12] = 0b0010, xor 4 = 6
        kn1, kn2 = scramble_pair(pair, v)
        assert (kn1, kn2) == (1, 6)
        assert (kn2 - kn1 + 1) != pair.span

    def test_zero_vector_degenerates_to_raw_key(self):
        # With V=0 the XOR is identity, so KN == sorted K.
        assert scramble_pair(KeyPair(2, 5), 0) == (2, 5)

    def test_rejects_oversized_vector(self):
        with pytest.raises(ValueError):
            scramble_pair(KeyPair(0, 1), 0x1_0000)

    @given(
        st.integers(0, 7), st.integers(0, 7),
        st.integers(0, 0xFFFF),
    )
    def test_window_always_legal(self, k1, k2, vector):
        kn1, kn2 = scramble_pair(KeyPair(k1, k2), vector)
        assert 0 <= kn1 <= kn2 <= 7

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 0xFFFF))
    def test_depends_only_on_scramble_half(self, k1, k2, vector):
        low_junk = vector & 0x00FF
        kn_a = scramble_pair(KeyPair(k1, k2), vector)
        kn_b = scramble_pair(KeyPair(k1, k2), (vector & 0xFF00) | (low_junk ^ 0xFF))
        assert kn_a == kn_b

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 0xFFFFFFFF))
    def test_generalises_to_32_bit_vectors(self, k1, k2, vector):
        params = VectorParams(32)
        kn1, kn2 = scramble_pair(KeyPair(k1, k2), vector, params)
        assert 0 <= kn1 <= kn2 <= 15
