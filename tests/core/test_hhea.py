"""Tests for the plain HHEA baseline cipher."""

from hypothesis import given, settings, strategies as st

from repro.core import hhea
from repro.core.key import Key
from repro.core.trace import TraceRecorder
from repro.rtl.cycle_model import ScriptedVectorSource
from repro.util.bits import extract_field
from repro.util.lfsr import Lfsr


class TestWindows:
    def test_window_is_raw_sorted_pair(self):
        key = Key([(6, 2)])
        trace = TraceRecorder()
        hhea.encrypt_bits([1] * 5, key, Lfsr(16, seed=3), trace=trace)
        assert (trace[0].kn1, trace[0].kn2) == (2, 6)

    def test_no_data_scrambling(self):
        """HHEA embeds message bits verbatim — the property the constant
        chosen-plaintext attack exploits."""
        key = Key([(5, 7)])  # k1 = 5 would scramble under MHHEA
        vectors = hhea.encrypt_bits([0, 0, 0], key, ScriptedVectorSource([0xFFFF]))
        assert extract_field(vectors[0], 7, 5) == 0b000

    def test_window_independent_of_vector(self):
        key = Key([(1, 4)])
        t1, t2 = TraceRecorder(), TraceRecorder()
        hhea.encrypt_bits([1] * 4, key, ScriptedVectorSource([0x0000]), trace=t1)
        hhea.encrypt_bits([1] * 4, key, ScriptedVectorSource([0xFFFF]), trace=t2)
        assert (t1[0].kn1, t1[0].kn2) == (t2[0].kn1, t2[0].kn2) == (1, 4)


class TestRoundTrips:
    @given(st.binary(max_size=32), st.integers(1, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_bytes_roundtrip(self, payload, seed):
        key = Key.generate(seed=17)
        cipher = hhea.HheaCipher(key)
        assert cipher.decrypt(cipher.encrypt(payload, seed=seed)) == payload

    @given(st.lists(st.integers(0, 1), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_framed_roundtrip(self, bits):
        key = Key.generate(seed=23)
        vectors = hhea.encrypt_bits(bits, key, Lfsr(16, seed=6), frame_bits=16)
        assert hhea.decrypt_bits(vectors, key, len(bits), frame_bits=16) == bits

    def test_differs_from_mhhea(self, key16):
        from repro.core import mhhea

        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 4
        h = hhea.encrypt_bits(bits, key16, Lfsr(16, seed=9))
        m = mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=9))
        assert h != m

    def test_fewer_vectors_with_wide_pairs(self):
        wide = Key([(0, 7)])
        narrow = Key([(3, 3)])
        bits = [1] * 32
        v_wide = hhea.encrypt_bits(bits, wide, Lfsr(16, seed=2))
        v_narrow = hhea.encrypt_bits(bits, narrow, Lfsr(16, seed=2))
        assert len(v_wide) == 4       # 8 bits per vector
        assert len(v_narrow) == 32    # 1 bit per vector
