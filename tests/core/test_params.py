"""Tests for the vector-geometry parameter set."""

import pytest

from repro.core.params import PAPER_PARAMS, VectorParams


class TestPaperGeometry:
    def test_paper_defaults(self):
        assert PAPER_PARAMS.width == 16
        assert PAPER_PARAMS.half == 8
        assert PAPER_PARAMS.key_bits == 3
        assert PAPER_PARAMS.key_max == 7
        assert PAPER_PARAMS.max_window == 8
        assert PAPER_PARAMS.scramble_low == 8

    def test_expected_raw_window_is_3_625(self):
        # E[|K1-K2|] = 2.625 for uniform 3-bit halves, +1 for inclusivity.
        assert PAPER_PARAMS.expected_window() == pytest.approx(3.625)


class TestWidthSweep:
    @pytest.mark.parametrize("width,key_bits", [(4, 1), (8, 2), (16, 3), (32, 4), (64, 5)])
    def test_derived_key_bits(self, width, key_bits):
        params = VectorParams(width)
        assert params.key_bits == key_bits
        assert params.half == width // 2
        assert params.key_max == width // 2 - 1

    def test_scramble_region_never_overlaps_windows(self):
        for width in (4, 8, 16, 32, 64):
            params = VectorParams(width)
            assert params.scramble_low > params.key_max


class TestValidation:
    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            VectorParams(2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            VectorParams(24)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_PARAMS.width = 32  # type: ignore[misc]

    def test_str_mentions_geometry(self):
        assert "16" in str(PAPER_PARAMS)
