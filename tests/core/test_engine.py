"""Tests for the shared embed/extract engine (policy-independent core)."""

import pytest

from repro.core import engine
from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS
from repro.core.trace import TraceRecorder
from repro.rtl.cycle_model import ScriptedVectorSource
from repro.util.lfsr import Lfsr


def fixed_window_policy(low, high):
    def policy(pair, vector, params):
        return low, high
    return policy


def no_scramble(pair, q):
    return 0


class TestEmbedBasics:
    def test_empty_message_emits_nothing(self, key16):
        out = engine.embed_stream(
            [], key16, Lfsr(16, seed=1), fixed_window_policy(0, 3),
            no_scramble, PAPER_PARAMS,
        )
        assert out == []

    def test_one_vector_per_window(self, key16):
        bits = [1, 0, 1, 1]
        out = engine.embed_stream(
            bits, key16, Lfsr(16, seed=1), fixed_window_policy(0, 3),
            no_scramble, PAPER_PARAMS,
        )
        assert len(out) == 1

    def test_window_bits_carry_message(self, key16):
        source = ScriptedVectorSource([0x0000] * 4)
        bits = [1, 0, 1, 1]
        out = engine.embed_stream(
            bits, key16, source, fixed_window_policy(2, 5), no_scramble,
            PAPER_PARAMS,
        )
        assert out == [0b1101 << 2]

    def test_partial_final_window_keeps_vector_bits(self, key16):
        source = ScriptedVectorSource([0xFFFF])
        out = engine.embed_stream(
            [0, 0], key16, source, fixed_window_policy(0, 7), no_scramble,
            PAPER_PARAMS,
        )
        # only positions 0..1 replaced; 2..7 keep the vector's ones
        assert out == [0xFFFC]

    def test_scramble_policy_applied_with_cycling_q(self, key16):
        source = ScriptedVectorSource([0x0000])
        # data policy returns q's LSB: pattern 0,1,0 cycling with key_bits=3
        out = engine.embed_stream(
            [0] * 6, key16, source, fixed_window_policy(0, 5),
            lambda pair, q: q & 1, PAPER_PARAMS,
        )
        # q = 0,1,2,0,1,2 -> bits 0,1,0,0,1,0
        assert out == [0b010010]

    def test_rejects_bad_message_bit(self, key16):
        with pytest.raises(ValueError):
            engine.embed_stream(
                [2], key16, Lfsr(16, seed=1), fixed_window_policy(0, 3),
                no_scramble, PAPER_PARAMS,
            )

    def test_rejects_oversized_vector_from_source(self, key16):
        with pytest.raises(ValueError):
            engine.embed_stream(
                [1], key16, ScriptedVectorSource([0x10000]),
                fixed_window_policy(0, 3), no_scramble, PAPER_PARAMS,
            )

    def test_rejects_illegal_window_policy(self, key16):
        with pytest.raises(CipherFormatError, match="illegal window"):
            engine.embed_stream(
                [1], key16, Lfsr(16, seed=1), fixed_window_policy(5, 9),
                no_scramble, PAPER_PARAMS,
            )

    def test_rejects_non_binary_data_policy(self, key16):
        # A policy returning 2 would, if XORed straight in, clobber the
        # neighbouring vector bit — the engine must refuse instead.
        with pytest.raises(CipherFormatError, match="data-bit policy"):
            engine.embed_stream(
                [1], key16, Lfsr(16, seed=1), fixed_window_policy(0, 3),
                lambda pair, q: 2, PAPER_PARAMS,
            )

    def test_rejects_bad_frame_bits(self, key16):
        with pytest.raises(ValueError):
            engine.embed_stream(
                [1], key16, Lfsr(16, seed=1), fixed_window_policy(0, 3),
                no_scramble, PAPER_PARAMS, frame_bits=0,
            )


class TestFraming:
    def test_frame_truncates_windows(self, key16):
        # 16-bit frames with 5-bit windows: the 4th vector of each frame
        # carries only 16 - 15 = 1 bit.
        source = ScriptedVectorSource([0x0000] * 8)
        bits = [1] * 20
        trace = TraceRecorder()
        engine.embed_stream(
            bits, key16, source, fixed_window_policy(0, 4), no_scramble,
            PAPER_PARAMS, trace=trace, frame_bits=16,
        )
        consumed = [r.bits_consumed for r in trace]
        assert consumed == [5, 5, 5, 1, 4]

    def test_flat_mode_never_truncates_midstream(self, key16):
        source = ScriptedVectorSource([0x0000] * 8)
        trace = TraceRecorder()
        engine.embed_stream(
            [1] * 20, key16, source, fixed_window_policy(0, 4), no_scramble,
            PAPER_PARAMS, trace=trace,
        )
        assert [r.bits_consumed for r in trace] == [5, 5, 5, 5]

    def test_framed_roundtrip(self, key16):
        bits = [i % 2 for i in range(45)]
        vectors = engine.embed_stream(
            bits, key16, Lfsr(16, seed=3), fixed_window_policy(1, 6),
            no_scramble, PAPER_PARAMS, frame_bits=16,
        )
        back = engine.extract_stream(
            vectors, key16, len(bits), fixed_window_policy(1, 6),
            no_scramble, PAPER_PARAMS, frame_bits=16,
        )
        assert back == bits

    def test_frame_mismatch_breaks_roundtrip(self, key16):
        bits = [1, 0] * 20
        vectors = engine.embed_stream(
            bits, key16, Lfsr(16, seed=3), fixed_window_policy(0, 4),
            no_scramble, PAPER_PARAMS, frame_bits=16,
        )
        back = engine.extract_stream(
            vectors, key16, len(bits), fixed_window_policy(0, 4),
            no_scramble, PAPER_PARAMS, frame_bits=None, strict=False,
        )
        assert back != bits


class TestExtractValidation:
    def _vectors(self, key, n_bits):
        return engine.embed_stream(
            [1] * n_bits, key, Lfsr(16, seed=9), fixed_window_policy(0, 3),
            no_scramble, PAPER_PARAMS,
        )

    def test_truncated_ciphertext_raises(self, key16):
        vectors = self._vectors(key16, 12)
        with pytest.raises(CipherFormatError):
            engine.extract_stream(
                vectors[:-1], key16, 12, fixed_window_policy(0, 3),
                no_scramble, PAPER_PARAMS,
            )

    def test_trailing_ciphertext_raises_when_strict(self, key16):
        vectors = self._vectors(key16, 12) + [0]
        with pytest.raises(CipherFormatError):
            engine.extract_stream(
                vectors, key16, 12, fixed_window_policy(0, 3),
                no_scramble, PAPER_PARAMS,
            )

    def test_trailing_ciphertext_tolerated_when_lenient(self, key16):
        vectors = self._vectors(key16, 12) + [0]
        bits = engine.extract_stream(
            vectors, key16, 12, fixed_window_policy(0, 3),
            no_scramble, PAPER_PARAMS, strict=False,
        )
        assert bits == [1] * 12

    def test_negative_n_bits_rejected(self, key16):
        with pytest.raises(ValueError):
            engine.extract_stream(
                [], key16, -1, fixed_window_policy(0, 3), no_scramble,
                PAPER_PARAMS,
            )

    def test_zero_bits_from_empty(self, key16):
        assert engine.extract_stream(
            [], key16, 0, fixed_window_policy(0, 3), no_scramble, PAPER_PARAMS,
        ) == []


class TestTraceRecords:
    def test_trace_fields(self, key4):
        trace = TraceRecorder()
        engine.embed_stream(
            [1] * 10, key4, Lfsr(16, seed=5), fixed_window_policy(0, 3),
            no_scramble, PAPER_PARAMS, trace=trace,
        )
        assert len(trace) == 3
        assert [r.pair_index for r in trace] == [0, 1, 2]
        assert trace.total_bits() == 10
        first = trace[0]
        assert first.m_start == 0
        assert first.window_width == 4

    def test_mean_window_requires_records(self):
        with pytest.raises(ValueError):
            TraceRecorder().mean_window()
