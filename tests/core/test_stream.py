"""Tests for the packet container format."""

import pytest

from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    HEADER_SIZE,
    NONCE_MAX,
    PacketHeader,
    decrypt_packet,
    encrypt_packet,
    split_packets,
    validate_nonce,
)


class TestRoundTrip:
    def test_mhhea_packet(self, key16):
        packet = encrypt_packet(b"payload 123", key16, nonce=0x5EED)
        assert decrypt_packet(packet, key16) == b"payload 123"

    def test_hhea_packet(self, key16):
        packet = encrypt_packet(b"payload 123", key16, nonce=0x5EED,
                                algorithm=ALGORITHM_HHEA)
        assert decrypt_packet(packet, key16) == b"payload 123"

    def test_empty_payload(self, key16):
        packet = encrypt_packet(b"", key16)
        assert decrypt_packet(packet, key16) == b""
        assert len(packet) == HEADER_SIZE

    def test_large_payload(self, key16):
        payload = bytes(range(256)) * 8
        packet = encrypt_packet(payload, key16, nonce=3)
        assert decrypt_packet(packet, key16) == payload

    def test_different_nonces_differ(self, key16):
        a = encrypt_packet(b"same", key16, nonce=1)
        b = encrypt_packet(b"same", key16, nonce=2)
        assert a != b


class TestNonceValidation:
    def test_zero_nonce_rejected(self, key16):
        with pytest.raises(CipherFormatError, match="nonce"):
            encrypt_packet(b"x", key16, nonce=0)

    def test_width_masked_zero_rejected(self, key16):
        # 0x10000 is non-zero but reduces to the frozen all-zero state
        # of the 16-bit LFSR; it must fail clearly, not as a bare
        # ValueError from inside the generator.
        with pytest.raises(CipherFormatError, match="all-zero"):
            encrypt_packet(b"x", key16, nonce=0x10000)

    def test_oversized_nonce_rejected_not_truncated(self, key16):
        # 2**32 + 1 used to be silently truncated to 1; it must now be
        # rejected because the header field cannot represent it.
        with pytest.raises(CipherFormatError, match="32-bit"):
            encrypt_packet(b"x", key16, nonce=NONCE_MAX + 2)

    def test_negative_nonce_rejected(self, key16):
        with pytest.raises(CipherFormatError):
            encrypt_packet(b"x", key16, nonce=-1)

    def test_non_int_nonce_rejected(self, key16):
        with pytest.raises(CipherFormatError, match="int"):
            encrypt_packet(b"x", key16, nonce=True)

    def test_boundary_nonces_accepted(self, key16):
        for nonce in (1, 0xFFFF, 0x10001, NONCE_MAX):
            assert validate_nonce(nonce, 16) == nonce
            assert decrypt_packet(
                encrypt_packet(b"edge", key16, nonce=nonce), key16
            ) == b"edge"

    def test_header_carries_full_32_bit_nonce(self, key16):
        packet = encrypt_packet(b"x", key16, nonce=0xDEAD0001)
        assert PacketHeader.unpack(packet).nonce == 0xDEAD0001


class TestHeader:
    def test_header_roundtrip(self):
        header = PacketHeader(
            algorithm=ALGORITHM_MHHEA, width=16, nonce=0xDEADBEEF,
            n_bits=100, n_vectors=40, crc=0x1234,
        )
        assert PacketHeader.unpack(header.pack()) == header

    def test_short_blob_rejected(self):
        with pytest.raises(CipherFormatError):
            PacketHeader.unpack(b"\x00" * (HEADER_SIZE - 1))

    def test_bad_magic(self, key16):
        packet = bytearray(encrypt_packet(b"x", key16))
        packet[0] = ord("X")
        with pytest.raises(CipherFormatError):
            decrypt_packet(bytes(packet), key16)

    def test_bad_version(self, key16):
        packet = bytearray(encrypt_packet(b"x", key16))
        packet[4] = 99
        with pytest.raises(CipherFormatError):
            decrypt_packet(bytes(packet), key16)

    def test_bad_algorithm(self, key16):
        packet = bytearray(encrypt_packet(b"x", key16))
        packet[5] = 7
        with pytest.raises(CipherFormatError):
            decrypt_packet(bytes(packet), key16)

    def test_reserved_flags(self, key16):
        packet = bytearray(encrypt_packet(b"x", key16))
        packet[7] = 1
        with pytest.raises(CipherFormatError):
            decrypt_packet(bytes(packet), key16)

    def test_bad_width_byte(self, key16):
        packet = bytearray(encrypt_packet(b"x", key16))
        packet[6] = 9  # not a byte multiple
        with pytest.raises(CipherFormatError):
            decrypt_packet(bytes(packet), key16)


class TestDamage:
    def test_truncated_payload(self, key16):
        packet = encrypt_packet(b"hello there", key16)
        with pytest.raises(CipherFormatError):
            decrypt_packet(packet[:-3], key16)

    def test_trailing_bytes(self, key16):
        packet = encrypt_packet(b"hello there", key16)
        with pytest.raises(CipherFormatError):
            decrypt_packet(packet + b"\x00", key16)

    def test_payload_corruption_caught_by_crc(self, key16):
        packet = bytearray(encrypt_packet(b"hello there", key16))
        packet[-1] ^= 0xFF
        with pytest.raises(CipherFormatError, match="CRC"):
            decrypt_packet(bytes(packet), key16)

    def test_header_corruption_caught_by_crc(self, key16):
        # The CRC covers the header too (v2): a flipped nonce bit must
        # be detected, not just payload damage.
        packet = bytearray(encrypt_packet(b"hello there", key16, nonce=1))
        packet[8] ^= 0x04  # nonce field
        with pytest.raises(CipherFormatError, match="CRC"):
            decrypt_packet(bytes(packet), key16)

    def test_width_mismatch_with_key(self, key16):
        packet = encrypt_packet(b"x", key16)
        wide_key = Key.generate(seed=1, params=VectorParams(32))
        with pytest.raises(CipherFormatError):
            decrypt_packet(packet, wide_key)


class TestSplitPackets:
    def test_splits_back_to_back(self, key16):
        packets = [encrypt_packet(bytes([i] * (i + 1)), key16, nonce=i + 1)
                   for i in range(4)]
        stream = b"".join(packets)
        assert split_packets(stream) == packets

    def test_empty_stream(self):
        assert split_packets(b"") == []

    def test_mid_packet_truncation(self, key16):
        stream = encrypt_packet(b"abcdef", key16)
        with pytest.raises(CipherFormatError):
            split_packets(stream[:-1])

    def test_split_then_decrypt(self, key16):
        payloads = [b"alpha", b"bravo", b"charlie"]
        stream = b"".join(
            encrypt_packet(p, key16, nonce=i + 10) for i, p in enumerate(payloads)
        )
        recovered = [decrypt_packet(p, key16) for p in split_packets(stream)]
        assert recovered == payloads

    def test_truncated_header_rejected(self, key16):
        stream = encrypt_packet(b"abcdef", key16)
        with pytest.raises(CipherFormatError, match="header"):
            split_packets(stream + stream[: HEADER_SIZE - 5])

    def test_trailing_garbage_rejected(self, key16):
        stream = encrypt_packet(b"abcdef", key16)
        with pytest.raises(CipherFormatError):
            split_packets(stream + b"\xffGARBAGE TRAILING BYTES\xff")

    def test_corrupted_mid_stream_length_field(self, key16):
        # Inflating one packet's vector count desynchronises everything
        # after it; the parser must fail, not mis-slice silently.
        first = bytearray(encrypt_packet(b"abc", key16, nonce=1))
        second = encrypt_packet(b"def", key16, nonce=2)
        first[16] = 0xFF  # vector count low byte
        with pytest.raises(CipherFormatError):
            for packet in split_packets(bytes(first) + second):
                decrypt_packet(packet, key16)
