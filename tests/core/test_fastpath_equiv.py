"""Differential conformance: the fast engine is pinned, bit for bit, to the
reference engine.

Randomised cross-checks (seeded via ``REPRO_TEST_SEED`` for reproducible CI
runs) cover both ciphers, both framing semantics, every supported width,
truncated final windows and EOF edge cases — the contract that makes
``engine="fast"`` safe to enable anywhere.  Each (cipher, framing) combo
runs ``CASES`` randomised cases; the acceptance bar is zero mismatches.
"""

import os
import random

import pytest

from repro.core import fastpath, hhea, mhhea
from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    decrypt_packet,
    encrypt_packet,
)
from repro.util.bits import mask
from repro.util.lfsr import PRIMITIVE_TAPS, LeapLfsr, Lfsr

#: One seed controls every randomised case; override in the environment to
#: replay a CI failure locally (the CI matrix pins it).
SEED = int(os.environ.get("REPRO_TEST_SEED", "20050307"))

#: Randomised cases per (cipher, framing) combination.
CASES = 1000

#: Engine-level widths under test (packets additionally need width % 8 == 0).
WIDTHS = (4, 8, 16, 32)

CIPHERS = {"hhea": hhea, "mhhea": mhhea}


def _random_message(rng: random.Random) -> list[int]:
    """Length distribution exercising EOF and truncated-final-window paths:
    empty, single-bit, sub-frame, multi-frame, and exact frame multiples."""
    shape = rng.randrange(6)
    if shape == 0:
        n = 0
    elif shape == 1:
        n = rng.randint(1, 3)
    elif shape == 2:
        n = rng.randint(4, 15)
    elif shape == 3:
        n = 16 * rng.randint(1, 8)  # exact frame boundary
    else:
        n = rng.randint(17, 400)
    return [rng.randint(0, 1) for _ in range(n)]


class TestLeapLfsrConformance:
    """The batched vector generator must replay Lfsr.next_word exactly."""

    @pytest.mark.parametrize("width", WIDTHS)
    def test_word_sequence_and_state(self, width):
        rng = random.Random(f"{SEED}:leap:{width}")
        for _ in range(50):
            seed = rng.randrange(1, 1 << width)
            ref = Lfsr(width, seed=seed)
            leap = LeapLfsr(width, seed=seed)
            count = rng.randint(1, 200)
            assert leap.words(count) == [ref.next_word() for _ in range(count)]
            assert leap.state == ref.state

    def test_from_lfsr_resumes_mid_stream(self):
        ref = Lfsr(16, seed=0xACE1)
        for _ in range(7):
            ref.next_word()
        leap = LeapLfsr.from_lfsr(ref)
        clone = Lfsr(16, seed=1)
        clone.state = ref.state
        assert [leap.next_word() for _ in range(20)] == [
            clone.next_word() for _ in range(20)
        ]

    def test_explicit_taps(self):
        taps = PRIMITIVE_TAPS[16]
        ref = Lfsr(16, seed=3, taps=taps)
        assert LeapLfsr(16, seed=3, taps=taps).words(32) == [
            ref.next_word() for _ in range(32)
        ]

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError, match="non-zero"):
            LeapLfsr(16, seed=0)


@pytest.mark.parametrize("cipher", sorted(CIPHERS))
@pytest.mark.parametrize("frame_bits", [None, 16])
class TestDifferentialConformance:
    """fast == reference over randomised keys, widths, messages, seeds."""

    def test_randomized_cross_check(self, cipher, frame_bits):
        mod = CIPHERS[cipher]
        rng = random.Random(f"{SEED}:{cipher}:{frame_bits}")
        mismatches = 0
        for trial in range(CASES):
            width = rng.choice(WIDTHS)
            params = VectorParams(width)
            key = Key.generate(rng.randrange(1 << 32),
                               rng.randint(1, 16), params)
            bits = _random_message(rng)
            seed = rng.randrange(1, 1 << width)
            src_ref = Lfsr(width, seed=seed)
            src_fast = Lfsr(width, seed=seed)
            v_ref = mod.encrypt_bits(bits, key, src_ref, params,
                                     frame_bits=frame_bits)
            v_fast = mod.encrypt_bits(bits, key, src_fast, params,
                                      frame_bits=frame_bits, engine="fast")
            if v_ref != v_fast:
                mismatches += 1
                continue
            # The fast path must leave the caller's RNG in the exact state
            # the reference would have (it writes the leap state back).
            assert src_ref.state == src_fast.state, trial
            # Cross-decryption: each engine decrypts the other's output.
            assert mod.decrypt_bits(v_ref, key, len(bits), params,
                                    frame_bits=frame_bits,
                                    engine="fast") == bits, trial
            assert mod.decrypt_bits(v_fast, key, len(bits), params,
                                    frame_bits=frame_bits) == bits, trial
        assert mismatches == 0

    def test_truncated_ciphertext_raises_in_both(self, cipher, frame_bits):
        mod = CIPHERS[cipher]
        rng = random.Random(f"{SEED}:trunc:{cipher}:{frame_bits}")
        for _ in range(50):
            width = rng.choice(WIDTHS)
            params = VectorParams(width)
            key = Key.generate(rng.randrange(1 << 32),
                               rng.randint(1, 16), params)
            bits = [rng.randint(0, 1) for _ in range(rng.randint(2, 80))]
            vectors = mod.encrypt_bits(bits, key, Lfsr(width, seed=1), params,
                                       frame_bits=frame_bits, engine="fast")
            for engine in ("reference", "fast"):
                with pytest.raises(CipherFormatError, match="truncated"):
                    mod.decrypt_bits(vectors[:-1], key, len(bits), params,
                                     frame_bits=frame_bits, engine=engine)

    def test_trailing_ciphertext_strictness_matches(self, cipher, frame_bits):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=11, n_pairs=5)
        bits = [1, 0, 1] * 8
        vectors = mod.encrypt_bits(bits, key, Lfsr(16, seed=9),
                                   frame_bits=frame_bits)
        extra = vectors + [0]
        for engine in ("reference", "fast"):
            with pytest.raises(CipherFormatError, match="trailing"):
                mod.decrypt_bits(extra, key, len(bits),
                                 frame_bits=frame_bits, engine=engine)
            assert mod.decrypt_bits(extra, key, len(bits), strict=False,
                                    frame_bits=frame_bits,
                                    engine=engine) == bits


class TestPacketDifferential:
    """Packet containers must be byte-identical across engines."""

    @pytest.mark.parametrize("algorithm", [ALGORITHM_HHEA, ALGORITHM_MHHEA])
    def test_packets_byte_identical(self, algorithm):
        rng = random.Random(f"{SEED}:packet:{algorithm}")
        for trial in range(150):
            width = rng.choice((8, 16, 32))
            params = VectorParams(width)
            key = Key.generate(rng.randrange(1 << 32),
                               rng.randint(1, 16), params)
            payload = rng.randbytes(rng.randint(0, 150))
            while True:
                nonce = rng.randrange(1, 0xFFFFFFFF)
                if nonce & mask(width):
                    break
            p_ref = encrypt_packet(payload, key, nonce=nonce,
                                   algorithm=algorithm)
            p_fast = encrypt_packet(payload, key, nonce=nonce,
                                    algorithm=algorithm, engine="fast")
            assert p_ref == p_fast, trial
            assert decrypt_packet(p_ref, key, engine="fast") == payload
            assert decrypt_packet(p_fast, key) == payload

    def test_batch_codec_matches_loose_packets(self):
        key = Key.generate(seed=2005, n_pairs=16)
        rng = random.Random(f"{SEED}:batch")
        payloads = [rng.randbytes(rng.randint(0, 64)) for _ in range(24)]
        nonces = list(range(1, len(payloads) + 1))
        codec = fastpath.BatchCodec(key)
        packets = codec.encrypt_many(payloads, nonces)
        assert packets == [
            encrypt_packet(p, key, nonce=n) for p, n in zip(payloads, nonces)
        ]
        assert codec.decrypt_many(packets) == payloads

    def test_batch_codec_validates(self):
        key = Key.generate(seed=2005)
        with pytest.raises(ValueError, match="nonces"):
            fastpath.BatchCodec(key).encrypt_many([b"x"], [])
        with pytest.raises(ValueError, match="engine"):
            fastpath.BatchCodec(key, engine="turbo")
        with pytest.raises(CipherFormatError, match="algorithm"):
            fastpath.BatchCodec(key, algorithm=7)


class TestScheduleCache:
    def test_schedule_reused_across_calls(self):
        key = Key.generate(seed=5)
        first = fastpath.schedule_for(key, fastpath.MHHEA, key.params)
        again = fastpath.schedule_for(key, fastpath.MHHEA, key.params)
        assert first is again

    def test_unknown_algorithm_rejected(self):
        key = Key.generate(seed=5)
        with pytest.raises(ValueError, match="algorithm"):
            fastpath.schedule_for(key, "rot13", key.params)

    def test_cache_releases_schedule_with_its_key(self):
        # The rekey ratchet must actually retire epoch keys: once a Key
        # is garbage collected, its compiled schedule (which embeds
        # key-derived material) must not linger in the global cache.
        import gc
        import weakref

        key = Key.generate(seed=99)
        schedule = fastpath.schedule_for(key, fastpath.MHHEA, key.params)
        probe = weakref.ref(schedule)
        del schedule, key
        gc.collect()
        assert probe() is None


class TestSourceWidthMismatch:
    """A wrong-width Lfsr must fail exactly like the reference engine."""

    @pytest.mark.parametrize("cipher", sorted(CIPHERS))
    def test_too_wide_lfsr_raises_in_both_engines(self, cipher):
        mod = CIPHERS[cipher]
        key = Key.generate(seed=3)  # 16-bit params
        bits = [1, 0, 1, 1] * 10
        results = []
        for engine in ("reference", "fast"):
            with pytest.raises(ValueError, match="hiding vector"):
                # A 32-bit register eventually emits words over 16 bits;
                # both engines must reject rather than emit garbage.
                mod.encrypt_bits(bits, key, Lfsr(32, seed=0xDEADBEEF),
                                 engine=engine)
            results.append("raised")
        assert results == ["raised", "raised"]

    @pytest.mark.parametrize("cipher", sorted(CIPHERS))
    def test_narrower_lfsr_stays_bit_identical(self, cipher):
        # A narrower register is legal (its words always fit); the fast
        # engine must still take it and agree with the reference.
        mod = CIPHERS[cipher]
        key = Key.generate(seed=3)
        bits = [1, 0, 1, 1] * 10
        ref = mod.encrypt_bits(bits, key, Lfsr(8, seed=0x5A))
        fast = mod.encrypt_bits(bits, key, Lfsr(8, seed=0x5A), engine="fast")
        assert ref == fast


class TestMalformedPacketParity:
    def test_non_byte_n_bits_rejected_by_both_engines(self):
        # A crafted header advertising a fractional byte count must be a
        # CipherFormatError for either engine (structural damage, caught
        # before any extraction work).
        from dataclasses import replace

        from repro.core.stream import HEADER_SIZE, PacketHeader
        from repro.util.crc import crc16_ccitt

        key = Key.generate(seed=2005, n_pairs=16)
        packet = encrypt_packet(b"AB", key, nonce=5)
        header = replace(PacketHeader.unpack(packet), n_bits=12, crc=0)
        payload = packet[HEADER_SIZE:]
        forged_header = replace(
            header, crc=crc16_ccitt(header.pack() + payload))
        forged = forged_header.pack() + payload
        for engine in ("reference", "fast"):
            with pytest.raises(CipherFormatError, match="whole byte"):
                decrypt_packet(forged, key, engine=engine)


class TestCipherClassParity:
    """The bytes-level cipher classes must agree across engines too."""

    def test_mhhea_cipher_engines_agree(self):
        from repro.core.mhhea import MhheaCipher

        key = Key.generate(seed=2005, n_pairs=16)
        plaintext = bytes(range(256)) * 3
        ref = MhheaCipher(key).encrypt(plaintext, seed=0x1234)
        fast = MhheaCipher(key, engine="fast").encrypt(plaintext, seed=0x1234)
        assert ref == fast
        assert MhheaCipher(key, engine="fast").decrypt(ref) == plaintext
        assert MhheaCipher(key).decrypt(fast) == plaintext

    def test_hhea_cipher_engines_agree(self):
        from repro.core.hhea import HheaCipher

        key = Key.generate(seed=2005, n_pairs=16)
        plaintext = b"baseline cipher parity" * 7
        ref = HheaCipher(key).encrypt(plaintext, seed=0x4321)
        fast = HheaCipher(key, engine="fast").encrypt(plaintext, seed=0x4321)
        assert ref == fast
        assert HheaCipher(key, engine="fast").decrypt(ref) == plaintext
