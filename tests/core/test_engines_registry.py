"""The engine registry: resolution, validation, plugins, error shape."""

import pytest

from repro.core import engines
from repro.core.errors import (
    ReproError,
    SessionError,
    UnknownEngineError,
)
from repro.core.key import Key
from repro.core.stream import decrypt_packet, encrypt_packet


@pytest.fixture
def clean_registry():
    """Snapshot/restore the registry around plugin tests."""
    factories = dict(engines._FACTORIES)
    instances = dict(engines._INSTANCES)
    yield
    engines._FACTORIES.clear()
    engines._FACTORIES.update(factories)
    engines._INSTANCES.clear()
    engines._INSTANCES.update(instances)


class TestResolution:
    def test_builtins_registered(self):
        assert engines.registered_engines() == ("reference", "fast")

    def test_get_engine_by_name(self):
        assert isinstance(engines.get_engine("fast"), engines.FastEngine)
        assert isinstance(engines.get_engine("reference"),
                          engines.ReferenceEngine)

    def test_none_resolves_to_default(self):
        default = engines.get_engine(None)
        assert default.name == engines.DEFAULT_ENGINE_NAME

    def test_instances_are_cached(self):
        assert engines.get_engine("fast") is engines.get_engine("fast")

    def test_engine_instance_passes_through(self):
        backend = engines.get_engine("fast")
        assert engines.get_engine(backend) is backend

    def test_engine_name_normalisation(self):
        assert engines.engine_name(None) == engines.DEFAULT_ENGINE_NAME
        assert engines.engine_name("fast") == "fast"
        assert engines.engine_name(engines.get_engine("fast")) == "fast"
        with pytest.raises(UnknownEngineError):
            engines.engine_name("turbo")


class TestValidation:
    def test_unknown_name_lists_registered_engines(self):
        with pytest.raises(UnknownEngineError, match="reference.*fast"):
            engines.check_engine_name("turbo")

    def test_error_is_valueerror_and_sessionerror_and_reproerror(self):
        # Compatibility contract: pre-registry handlers caught ValueError
        # at the core layer and SessionError at the link layer.
        exc = UnknownEngineError("x")
        assert isinstance(exc, ValueError)
        assert isinstance(exc, SessionError)
        assert isinstance(exc, ReproError)

    def test_check_engine_name_returns_name(self):
        assert engines.check_engine_name("fast") == "fast"

    def test_fastpath_check_engine_delegates(self):
        from repro.core.fastpath import check_engine

        assert check_engine("reference") == "reference"
        assert check_engine(engines.get_engine("fast")) == "fast"
        with pytest.raises(ValueError, match="engine"):
            check_engine("turbo")


class TestRegistration:
    def test_duplicate_name_rejected(self, clean_registry):
        with pytest.raises(ValueError, match="already registered"):
            engines.register_engine("fast", engines.FastEngine)

    def test_replace_flag_shadows(self, clean_registry):
        class Shadow(engines.FastEngine):
            name = "fast"

        engines.register_engine("fast", Shadow, replace=True)
        assert isinstance(engines.get_engine("fast"), Shadow)

    def test_bad_name_rejected(self, clean_registry):
        with pytest.raises(ValueError, match="name"):
            engines.register_engine("", engines.FastEngine)

    def test_plugin_round_trips_and_matches_builtins(self, clean_registry,
                                                     key16):
        calls = []

        class Instrumented(engines.FastEngine):
            name = "instrumented"

            def embed_bytes(self, key, algorithm, params, data, source):
                calls.append(("embed", algorithm, len(data)))
                return super().embed_bytes(key, algorithm, params, data,
                                           source)

        engines.register_engine("instrumented", Instrumented)
        payload = b"plugin payload " * 11
        packet = encrypt_packet(payload, key16, nonce=0x5EED,
                                engine=engines.get_engine("instrumented"))
        assert calls == [("embed", "mhhea", len(payload))]
        # Wire-identical to both built-ins, decryptable by either.
        for name in ("reference", "fast"):
            backend = engines.get_engine(name)
            assert encrypt_packet(payload, key16, nonce=0x5EED,
                                  engine=backend) == packet
            assert decrypt_packet(packet, key16, engine=backend) == payload


class TestEngineEquivalence:
    """The registry objects compute the same function (spot check)."""

    @pytest.mark.parametrize("algorithm", engines.ALGORITHM_NAMES)
    def test_bit_level_round_trip_across_engines(self, algorithm, key4):
        from repro.util.lfsr import Lfsr

        bits = [(i * 5 + 3) % 2 for i in range(97)]
        params = key4.params
        out = {}
        for name in engines.registered_engines():
            backend = engines.get_engine(name)
            vectors = backend.embed_bits(key4, algorithm, params, bits,
                                         Lfsr(16, seed=0xACE1))
            out[name] = vectors
            assert backend.extract_bits(key4, algorithm, params, vectors,
                                        len(bits)) == bits
        assert out["reference"] == out["fast"]

    def test_algorithm_name_validated(self, key4):
        backend = engines.get_engine("fast")
        with pytest.raises(ValueError, match="algorithm"):
            backend.embed_bytes(key4, "rot13", key4.params, b"x", None)


class TestKeyErrorRename:
    def test_alias_is_the_same_class(self):
        from repro.core.errors import KeyError_, ReproKeyError

        assert KeyError_ is ReproKeyError

    def test_new_name_catches_key_failures(self):
        from repro.core.errors import ReproKeyError

        with pytest.raises(ReproKeyError):
            Key.from_hex("zz:zz")

    def test_both_names_exported(self):
        from repro.core import errors

        assert "ReproKeyError" in errors.__all__
        assert "KeyError_" in errors.__all__


class TestCipherClassResolution:
    def test_cipher_exposes_resolved_backend(self, key16):
        from repro.core.mhhea import MhheaCipher

        cipher = MhheaCipher(key16, engine="fast")
        assert cipher.engine == "fast"
        assert cipher.backend is engines.get_engine("fast")

    def test_cipher_accepts_engine_instance(self, key16):
        from repro.core.mhhea import MhheaCipher

        backend = engines.get_engine("reference")
        cipher = MhheaCipher(key16, engine=backend)
        assert cipher.backend is backend
        ct = cipher.encrypt(b"object selector")
        assert cipher.decrypt(ct) == b"object selector"
