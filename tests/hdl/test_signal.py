"""Tests for signals and buses."""

import pytest

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus


def make_bus(width=4):
    c = Circuit("t")
    return c, c.input_bus("a", width)


class TestBus:
    def test_value_packs_lsb_first(self):
        c, bus = make_bus()
        bus.poke(0b1010)
        assert bus.value() == 0b1010
        assert bus[1].value == 1
        assert bus[0].value == 0

    def test_poke_returns_changed_signals(self):
        _, bus = make_bus()
        changed = bus.poke(0b0011)
        assert len(changed) == 2
        assert bus.poke(0b0011) == []

    def test_poke_rejects_oversized(self):
        _, bus = make_bus()
        with pytest.raises(ValueError):
            bus.poke(0x10)

    def test_field_paper_notation(self):
        _, bus = make_bus(8)
        sub = bus.field(5, 2)
        assert sub.width == 4
        assert [s.name for s in sub] == [f"a[{i}]" for i in range(2, 6)]

    def test_field_bounds_checked(self):
        _, bus = make_bus()
        with pytest.raises(ValueError):
            bus.field(4, 0)
        with pytest.raises(ValueError):
            bus.field(1, 2)
        with pytest.raises(ValueError):
            bus.field(2, -1)

    def test_slice_returns_bus(self):
        _, bus = make_bus(8)
        sub = bus[2:6]
        assert isinstance(sub, Bus)
        assert sub.width == 4

    def test_empty_bus_rejected(self):
        with pytest.raises(ValueError):
            Bus("x", [])

    def test_len_and_iter(self):
        _, bus = make_bus(5)
        assert len(bus) == 5
        assert len(list(bus)) == 5

    def test_input_flag_set(self):
        _, bus = make_bus()
        assert all(sig.is_input for sig in bus)
