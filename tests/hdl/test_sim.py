"""Tests for the event-driven levelised simulator."""

import pytest

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus
from repro.hdl.sim import CombinationalLoopError, Simulator


class TestPropagation:
    def test_initial_settle(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        c.set_output("o", Bus("o", [c.not_(a[0])]))
        sim = Simulator(c)
        assert sim.peek("o") == 1  # NOT(0) settled at construction

    def test_deep_chain(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        sig = a[0]
        for _ in range(50):
            sig = c.not_(sig)
        c.set_output("o", Bus("o", [sig]))
        sim = Simulator(c)
        assert sim.peek("o") == 0  # even number of inversions
        sim.set_input("a", 1)
        assert sim.peek("o") == 1

    def test_fanout_updates_all_consumers(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        c.set_output("x", Bus("x", [c.not_(a[0])]))
        c.set_output("y", Bus("y", [c.buf(a[0])]))
        sim = Simulator(c)
        sim.set_input("a", 1)
        assert sim.peek("x") == 0
        assert sim.peek("y") == 1

    def test_unknown_input_rejected(self):
        c = Circuit("t")
        c.input_bus("a", 1)
        sim = Simulator(c)
        with pytest.raises(KeyError):
            sim.set_input("nope", 1)

    def test_peek_by_unknown_name_rejected(self):
        c = Circuit("t")
        c.input_bus("a", 1)
        sim = Simulator(c)
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_peek_input_by_name(self):
        c = Circuit("t")
        c.input_bus("a", 4)
        sim = Simulator(c)
        sim.set_input("a", 9)
        assert sim.peek("a") == 9


class TestClocking:
    def test_register_pipeline(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        q1 = c.register(a, name="q1")
        q2 = c.register(q1, name="q2")
        c.set_output("q2", q2)
        sim = Simulator(c)
        sim.set_input("a", 5)
        sim.tick()
        assert sim.peek(q1) == 5
        assert sim.peek("q2") == 0
        sim.tick()
        assert sim.peek("q2") == 5

    def test_tick_count(self):
        c = Circuit("t")
        c.input_bus("a", 1)
        sim = Simulator(c)
        sim.tick(5)
        assert sim.cycle == 5

    def test_tick_rejects_negative(self):
        c = Circuit("t")
        c.input_bus("a", 1)
        sim = Simulator(c)
        with pytest.raises(ValueError):
            sim.tick(-1)

    def test_counter_with_feedback(self):
        c = Circuit("t")
        count = c.bus("count", 4)
        c.register_on(count, c.increment(count))
        c.set_output("count", count)
        sim = Simulator(c)
        for expected in (1, 2, 3, 4):
            sim.tick()
            assert sim.peek("count") == expected

    def test_reset_state_restores_init(self):
        c = Circuit("t")
        count = c.bus("count", 4)
        c.register_on(count, c.increment(count), init=7)
        c.set_output("count", count)
        sim = Simulator(c)
        sim.tick(3)
        assert sim.peek("count") == 10
        sim.reset_state()
        assert sim.peek("count") == 7
        assert sim.cycle == 0

    def test_enable_gating(self):
        c = Circuit("t")
        a = c.input_bus("a", 2)
        en = c.input_bus("en", 1)
        q = c.register(a, enable=en[0], name="q")
        c.set_output("q", q)
        sim = Simulator(c)
        sim.set_input("a", 3)
        sim.tick()
        assert sim.peek("q") == 0
        sim.set_input("en", 1)
        sim.tick()
        assert sim.peek("q") == 3


class TestLoopDetection:
    def test_combinational_loop_raises(self):
        c = Circuit("t")
        a = c.bus("a", 1)
        b = c.not_(a[0])
        # close the loop a <- not(b) by hand-wiring through a gate
        from repro.hdl.gates import Gate

        gate = Gate("NOT", [b], a[0], len(c.gates))
        a[0].driver = gate
        c.gates.append(gate)
        b.fanout.append(gate)
        with pytest.raises(CombinationalLoopError):
            Simulator(c)

    def test_register_breaks_loop_legally(self):
        c = Circuit("t")
        q = c.bus("q", 1)
        c.register_on(q, Bus("qn", [c.not_(q[0])]))
        c.set_output("q", q)
        sim = Simulator(c)  # no loop: DFF is a sequential boundary
        sim.tick()
        assert sim.peek("q") == 1
        sim.tick()
        assert sim.peek("q") == 0
