"""Tests for the word-level circuit builders (simulated exhaustively)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.circuit import Circuit
from repro.hdl.gates import GATE_ARITY
from repro.hdl.signal import Bus
from repro.hdl.sim import Simulator
from repro.util.bits import mask, rotl, rotr


def build_and_sim(builder, widths):
    """Create a circuit with declared input buses, run the builder to
    produce outputs, and return a simulator."""
    c = Circuit("t")
    buses = [c.input_bus(f"i{k}", w) for k, w in enumerate(widths)]
    outs = builder(c, *buses)
    for name, bus in outs.items():
        c.set_output(name, bus)
    return c, Simulator(c)


class TestAdderSubtractor:
    def test_adder_exhaustive_3bit(self):
        c, sim = build_and_sim(
            lambda c, a, b: {"s": c.adder(a, b)[0],
                             "co": Bus("co", [c.adder(a, b)[1]])},
            [3, 3],
        )
        # note: builder instantiated two adders; use the declared outputs
        for a in range(8):
            for b in range(8):
                sim.set_input("i0", a)
                sim.set_input("i1", b)
                assert sim.peek("s") == (a + b) % 8
                assert sim.peek("co") == (a + b) // 8

    def test_adder_with_carry_in(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        ci = c.input_bus("ci", 1)
        total, co = c.adder(a, b, cin=ci[0])
        c.set_output("s", total)
        sim = Simulator(c)
        for av in (0, 5, 15):
            for bv in (0, 9, 15):
                for cv in (0, 1):
                    sim.set_input("a", av)
                    sim.set_input("b", bv)
                    sim.set_input("ci", cv)
                    assert sim.peek("s") == (av + bv + cv) % 16

    def test_subtractor_exhaustive_3bit(self):
        c, sim = build_and_sim(
            lambda c, a, b: {
                "d": c.subtractor(a, b)[0],
            },
            [3, 3],
        )
        for a in range(8):
            for b in range(8):
                sim.set_input("i0", a)
                sim.set_input("i1", b)
                assert sim.peek("d") == (a - b) % 8

    def test_less_than_exhaustive(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        c.set_output("lt", Bus("lt", [c.less_than(a, b)]))
        sim = Simulator(c)
        for av in range(16):
            for bv in range(16):
                sim.set_input("a", av)
                sim.set_input("b", bv)
                assert sim.peek("lt") == int(av < bv)

    def test_increment_wraps(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        c.set_output("inc", c.increment(a))
        sim = Simulator(c)
        for av in range(8):
            sim.set_input("a", av)
            assert sim.peek("inc") == (av + 1) % 8


class TestComparisons:
    def test_equals_const_exhaustive(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        for k in (0, 7, 15):
            c.set_output(f"eq{k}", Bus(f"eq{k}", [c.equals_const(a, k)]))
        sim = Simulator(c)
        for av in range(16):
            sim.set_input("a", av)
            for k in (0, 7, 15):
                assert sim.peek(f"eq{k}") == int(av == k)

    def test_equals_buses(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        b = c.input_bus("b", 3)
        c.set_output("eq", Bus("eq", [c.equals(a, b)]))
        sim = Simulator(c)
        for av in range(8):
            for bv in range(8):
                sim.set_input("a", av)
                sim.set_input("b", bv)
                assert sim.peek("eq") == int(av == bv)

    def test_equals_const_range_checked(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        with pytest.raises(ValueError):
            c.equals_const(a, 8)


class TestRotators:
    @given(st.integers(0, 0xFFFF), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_barrel_left_matches_software(self, value, amount):
        c = Circuit("t")
        a = c.input_bus("a", 16)
        amt = c.input_bus("amt", 3)
        c.set_output("r", c.barrel_rotate_left(a, amt))
        sim = Simulator(c)
        sim.set_input("a", value)
        sim.set_input("amt", amount)
        assert sim.peek("r") == rotl(value, amount, 16)

    @given(st.integers(0, 0xFFFF), st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_barrel_right_matches_software(self, value, amount):
        c = Circuit("t")
        a = c.input_bus("a", 16)
        amt = c.input_bus("amt", 4)
        c.set_output("r", c.barrel_rotate_right(a, amt))
        sim = Simulator(c)
        sim.set_input("a", value)
        sim.set_input("amt", amount)
        assert sim.peek("r") == rotr(value, amount, 16)

    def test_rotate_const_is_free(self):
        c = Circuit("t")
        a = c.input_bus("a", 8)
        gates_before = len(c.gates)
        rot = c.rotate_left_const(a, 3)
        assert len(c.gates) == gates_before
        c.set_output("r", rot)
        sim = Simulator(c)
        sim.set_input("a", 0b1001_0110)
        assert sim.peek("r") == rotl(0b1001_0110, 3, 8)


class TestMuxes:
    def test_muxn_exhaustive(self):
        c = Circuit("t")
        sel = c.input_bus("sel", 2)
        choices = [c.const_bus(v, 4) for v in (3, 9, 12, 5)]
        c.set_output("o", c.muxn(sel, choices))
        sim = Simulator(c)
        for s, expect in enumerate((3, 9, 12, 5)):
            sim.set_input("sel", s)
            assert sim.peek("o") == expect

    def test_muxn_rejects_wrong_choice_count(self):
        c = Circuit("t")
        sel = c.input_bus("sel", 2)
        with pytest.raises(ValueError):
            c.muxn(sel, [c.const_bus(0, 4)] * 3)

    def test_mux_bus_width_mismatch(self):
        c = Circuit("t")
        sel = c.input_bus("sel", 1)
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 5)
        with pytest.raises(ValueError):
            c.mux_bus(sel[0], a, b)


class TestDecoder:
    def test_one_hot(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        c.set_output("oh", c.decoder(a))
        sim = Simulator(c)
        for av in range(8):
            sim.set_input("a", av)
            assert sim.peek("oh") == 1 << av

    def test_enable_gates_all_outputs(self):
        c = Circuit("t")
        a = c.input_bus("a", 2)
        en = c.input_bus("en", 1)
        c.set_output("oh", c.decoder(a, enable=en[0]))
        sim = Simulator(c)
        sim.set_input("a", 2)
        sim.set_input("en", 0)
        assert sim.peek("oh") == 0
        sim.set_input("en", 1)
        assert sim.peek("oh") == 4


class TestStructuralInvariants:
    def test_all_gates_within_fanin_bound(self):
        """Wide AND/OR/XOR trees must decompose to <= 4-input gates."""
        c = Circuit("t")
        a = c.input_bus("a", 13)
        c.and_(*list(a))
        c.or_(*list(a))
        c.xor_(*list(a))
        for gate in c.gates:
            assert len(gate.inputs) == GATE_ARITY[gate.kind] <= 4

    def test_wide_and_tree_correct(self):
        c = Circuit("t")
        a = c.input_bus("a", 9)
        c.set_output("o", Bus("o", [c.and_(*list(a))]))
        sim = Simulator(c)
        sim.set_input("a", mask(9))
        assert sim.peek("o") == 1
        sim.set_input("a", mask(9) ^ (1 << 5))
        assert sim.peek("o") == 0

    def test_wide_xor_tree_correct(self):
        c = Circuit("t")
        a = c.input_bus("a", 9)
        c.set_output("o", Bus("o", [c.xor_(*list(a))]))
        sim = Simulator(c)
        for value in (0, 1, 0b101010101, mask(9)):
            sim.set_input("a", value)
            assert sim.peek("o") == bin(value).count("1") % 2

    def test_constants_are_shared(self):
        c = Circuit("t")
        assert c.const(0) is c.const(0)
        assert c.const(1) is c.const(1)
        assert c.const(0) is not c.const(1)

    def test_const_validation(self):
        c = Circuit("t")
        with pytest.raises(ValueError):
            c.const(2)

    def test_duplicate_io_names_rejected(self):
        c = Circuit("t")
        c.input_bus("a", 1)
        with pytest.raises(ValueError):
            c.input_bus("a", 2)
        b = c.bus("b", 1)
        c.set_output("o", b)
        with pytest.raises(ValueError):
            c.set_output("o", b)

    def test_dff_on_rejects_driven_net(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        out = c.not_(a[0])
        with pytest.raises(ValueError):
            c.dff_on(out, a[0])

    def test_unique_names(self):
        c = Circuit("t")
        s1 = c.signal("x")
        s2 = c.signal("x")
        assert s1.name != s2.name
