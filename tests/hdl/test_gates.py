"""Tests for the primitive cell library."""

import itertools

import pytest

from repro.hdl.circuit import Circuit
from repro.hdl.gates import (
    BusContentionError,
    GATE_ARITY,
    GATE_EVAL,
    Gate,
    MAX_FANIN,
)
from repro.hdl.signal import Signal


def _sig(i):
    return Signal(f"s{i}", i)


class TestGateEvalTable:
    """Exhaustive truth-table check for every primitive kind."""

    REFERENCE = {
        "BUF": lambda v: v[0],
        "NOT": lambda v: 1 - v[0],
        "AND2": lambda v: v[0] & v[1],
        "AND3": lambda v: v[0] & v[1] & v[2],
        "AND4": lambda v: v[0] & v[1] & v[2] & v[3],
        "OR2": lambda v: v[0] | v[1],
        "OR3": lambda v: v[0] | v[1] | v[2],
        "OR4": lambda v: v[0] | v[1] | v[2] | v[3],
        "NAND2": lambda v: 1 - (v[0] & v[1]),
        "NOR2": lambda v: 1 - (v[0] | v[1]),
        "XOR2": lambda v: v[0] ^ v[1],
        "XOR3": lambda v: v[0] ^ v[1] ^ v[2],
        "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
        "MUX2": lambda v: v[2] if v[0] else v[1],
        "ANDN2": lambda v: v[0] & (1 - v[1]),
    }

    @pytest.mark.parametrize("kind", sorted(REFERENCE))
    def test_exhaustive(self, kind):
        arity = GATE_ARITY[kind]
        for values in itertools.product((0, 1), repeat=arity):
            assert GATE_EVAL[kind](*values) == self.REFERENCE[kind](list(values)), (
                kind, values,
            )

    def test_constants(self):
        assert GATE_EVAL["CONST0"]() == 0
        assert GATE_EVAL["CONST1"]() == 1

    def test_every_kind_within_lut_fanin(self):
        for kind, arity in GATE_ARITY.items():
            assert arity <= MAX_FANIN, kind


class TestGateConstruction:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Gate("NAND9", [], _sig(0), 0)

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate("AND2", [_sig(0)], _sig(1), 0)

    def test_evaluate_uses_input_values(self):
        a, b, out = _sig(0), _sig(1), _sig(2)
        gate = Gate("XOR2", [a, b], out, 0)
        a.value, b.value = 1, 1
        assert gate.evaluate() == 0
        b.value = 0
        assert gate.evaluate() == 1


class TestDff:
    def _dff(self, enable=False, reset=False):
        c = Circuit("t")
        d = c.input_bus("d", 1)
        en = c.input_bus("en", 1) if enable else None
        rst = c.input_bus("rst", 1) if reset else None
        q = c.dff(d[0], enable=en[0] if en else None,
                  reset=rst[0] if rst else None, init=0)
        return c, d, en, rst, q

    def test_next_value_follows_d(self):
        c, d, _, _, q = self._dff()
        d.poke(1)
        assert c.dffs[0].next_value() == 1

    def test_enable_holds(self):
        c, d, en, _, q = self._dff(enable=True)
        d.poke(1)
        en.poke(0)
        assert c.dffs[0].next_value() == 0
        en.poke(1)
        assert c.dffs[0].next_value() == 1

    def test_reset_dominates_enable(self):
        c, d, en, rst, q = self._dff(enable=True, reset=True)
        d.poke(1)
        en.poke(1)
        rst.poke(1)
        assert c.dffs[0].next_value() == 0

    def test_bad_init_rejected(self):
        c = Circuit("t")
        d = c.input_bus("d", 1)
        with pytest.raises(ValueError):
            c.dff(d[0], init=2)


class TestTristate:
    def _net(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        b = c.input_bus("b", 1)
        ea = c.input_bus("ea", 1)
        eb = c.input_bus("eb", 1)
        net = c.tristate_bus("net", 1)
        c.tbuf_drive(a, ea[0], net)
        c.tbuf_drive(b, eb[0], net)
        return c, a, b, ea, eb, net

    def test_single_driver_wins(self):
        c, a, b, ea, eb, net = self._net()
        a.poke(1)
        ea.poke(1)
        assert c.tristate_groups[0].evaluate() == 1

    def test_keeper_retains_value_when_floating(self):
        c, a, b, ea, eb, net = self._net()
        a.poke(1)
        ea.poke(1)
        net[0].value = c.tristate_groups[0].evaluate()
        ea.poke(0)
        assert c.tristate_groups[0].evaluate() == 1  # kept

    def test_agreeing_drivers_allowed(self):
        c, a, b, ea, eb, net = self._net()
        a.poke(1)
        b.poke(1)
        ea.poke(1)
        eb.poke(1)
        assert c.tristate_groups[0].evaluate() == 1

    def test_conflicting_drivers_raise(self):
        c, a, b, ea, eb, net = self._net()
        a.poke(1)
        b.poke(0)
        ea.poke(1)
        eb.poke(1)
        with pytest.raises(BusContentionError):
            c.tristate_groups[0].evaluate()

    def test_drive_requires_tristate_net(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        en = c.input_bus("en", 1)
        plain = c.bus("plain", 1)
        with pytest.raises(ValueError):
            c.tbuf_drive(a, en[0], plain)
