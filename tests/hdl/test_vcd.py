"""Tests for the VCD writer."""

import pytest

from repro.hdl.vcd import VcdWriter


class TestDeclarations:
    def test_duplicate_rejected(self):
        w = VcdWriter()
        w.declare("a", 1)
        with pytest.raises(ValueError):
            w.declare("a", 2)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            VcdWriter().declare("a", 0)

    def test_declare_after_sample_rejected(self):
        w = VcdWriter()
        w.declare("a", 1)
        w.sample(0, {"a": 1})
        with pytest.raises(RuntimeError):
            w.declare("b", 1)


class TestSampling:
    def test_time_must_be_monotone(self):
        w = VcdWriter()
        w.declare("a", 1)
        w.sample(5, {"a": 0})
        with pytest.raises(ValueError):
            w.sample(4, {"a": 1})

    def test_undeclared_variable_rejected(self):
        w = VcdWriter()
        w.declare("a", 1)
        with pytest.raises(KeyError):
            w.sample(0, {"b": 1})

    def test_value_must_fit(self):
        w = VcdWriter()
        w.declare("a", 2)
        w.sample(0, {"a": 3})
        with pytest.raises(ValueError):
            w.sample(1, {"a": 4})
            w.render()


class TestRender:
    def test_header_and_changes(self):
        w = VcdWriter(timescale="10ns", module="dut")
        w.declare("clk", 1)
        w.declare("bus", 8)
        w.sample(0, {"clk": 0, "bus": 0xAB})
        w.sample(1, {"clk": 1, "bus": 0xAB})
        text = w.render()
        assert "$timescale 10ns $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 1" in text
        assert "$var reg 8" in text
        assert "b10101011" in text
        assert "#0" in text and "#1" in text

    def test_unchanged_values_not_re_emitted(self):
        w = VcdWriter()
        w.declare("a", 4)
        w.sample(0, {"a": 5})
        w.sample(1, {"a": 5})
        text = w.render()
        assert text.count("b0101") == 1

    def test_write_to_file(self, tmp_path):
        w = VcdWriter()
        w.declare("a", 1)
        w.sample(0, {"a": 1})
        path = tmp_path / "wave.vcd"
        w.write(str(path))
        assert path.read_text().startswith("$date")

    def test_identifiers_unique_for_many_vars(self):
        w = VcdWriter()
        for i in range(200):
            w.declare(f"v{i}", 1)
        idents = {ident for ident, _ in w._vars.values()}
        assert len(idents) == 200
