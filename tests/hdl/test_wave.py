"""Tests for the ASCII waveform renderer."""

import pytest

from repro.hdl.wave import WaveTrace, render_wave


def make_trace():
    trace = WaveTrace([("state", 0), ("bus", 16), ("bit", 1)])
    trace.record(state="INIT", bus=0x0000, bit=0)
    trace.record(state="LMSG", bus=0xABCD, bit=0)
    trace.record(state="LKEY", bus=0xABCD, bit=1)
    trace.record(state="CIRC", bus=0x1234, bit=0)
    return trace


class TestWaveTrace:
    def test_requires_signals(self):
        with pytest.raises(ValueError):
            WaveTrace([])

    def test_duplicate_signal_rejected(self):
        with pytest.raises(ValueError):
            WaveTrace([("a", 1), ("a", 2)])

    def test_record_requires_all_signals(self):
        trace = WaveTrace([("a", 1), ("b", 1)])
        with pytest.raises(ValueError):
            trace.record(a=1)

    def test_record_rejects_extras(self):
        trace = WaveTrace([("a", 1)])
        with pytest.raises(ValueError):
            trace.record(a=1, z=0)

    def test_column_and_at(self):
        trace = make_trace()
        assert trace.column("state") == ["INIT", "LMSG", "LKEY", "CIRC"]
        assert trace.at(1, "bus") == 0xABCD

    def test_find(self):
        trace = make_trace()
        assert trace.find("state", "LKEY") == 2
        assert trace.find("bit", 1) == 2
        assert trace.find("state", "NOPE") == -1
        assert trace.find("state", "INIT", start=1) == -1

    def test_unknown_signal(self):
        with pytest.raises(KeyError):
            make_trace().column("zz")


class TestRender:
    def test_contains_values(self):
        text = render_wave(make_trace())
        assert "ABCD" in text
        assert "LMSG" in text
        assert "cycle" in text

    def test_single_bit_drawn_as_wave(self):
        text = render_wave(make_trace())
        bit_line = [line for line in text.splitlines() if line.startswith("bit")][0]
        assert "/" in bit_line  # rising edge at cycle 2
        assert "\\" in bit_line  # falling edge at cycle 3

    def test_cycle_range(self):
        text = render_wave(make_trace(), 1, 2)
        assert "INIT" not in text
        assert "LMSG" in text

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            render_wave(make_trace(), 2, 1)
        with pytest.raises(ValueError):
            render_wave(make_trace(), 0, 99)

    def test_signal_selection(self):
        text = render_wave(make_trace(), signals=["state"])
        assert "bus" not in text

    def test_unknown_signal_selection(self):
        with pytest.raises(KeyError):
            render_wave(make_trace(), signals=["zz"])


class TestVcdExport:
    def test_numeric_signals_exported(self):
        text = make_trace().to_vcd()
        assert "$var" in text
        assert "bus" in text
        assert "state" not in text  # symbolic signals skipped
