"""Tests for netlist statistics, dumps and the mapping DAG."""

from repro.hdl.circuit import Circuit
from repro.hdl.netlist import combinational_dag, netlist_stats, netlist_text
from repro.hdl.signal import Bus


def small_circuit():
    c = Circuit("small")
    a = c.input_bus("a", 2)
    b = c.input_bus("b", 2)
    s, carry = c.adder(a, b)
    q = c.register(s, name="q")
    c.set_output("q", q)
    net = c.tristate_bus("shared", 2)
    sel = c.input_bus("sel", 1)
    c.tbuf_drive(a, sel[0], net)
    c.tbuf_drive(q, c.not_(sel[0]), net)
    c.set_output("shared", net)
    return c


class TestStats:
    def test_counts(self):
        c = small_circuit()
        stats = netlist_stats(c)
        assert stats.n_dffs == 2
        assert stats.n_tbufs == 4
        assert stats.n_tristate_nets == 2
        assert stats.n_input_bits == 5
        assert stats.n_output_bits == 4
        assert stats.n_io_bits == 9
        assert stats.n_gates == sum(stats.gate_histogram.values())

    def test_histogram_kinds(self):
        stats = netlist_stats(small_circuit())
        assert "XOR2" in stats.gate_histogram


class TestTextDump:
    def test_contains_structure(self):
        text = netlist_text(small_circuit())
        assert "circuit small" in text
        assert "input  a[2]" in text
        assert "output q[2]" in text
        assert "dff" in text
        assert "tbuf" in text

    def test_truncation(self):
        text = netlist_text(small_circuit(), max_gates=1)
        assert "more gates" in text


class TestMappingDag:
    def test_sources_and_sinks(self):
        c = small_circuit()
        from repro.hdl.sim import Simulator

        Simulator(c)  # levelise
        dag = combinational_dag(c)
        source_names = {s.name for s in dag.sources}
        # primary inputs + FF outputs + tristate outs are sources
        assert "a[0]" in source_names
        assert "q[0]" in source_names
        assert "shared[0]" in source_names
        sink_names = {s.name for s in dag.sinks}
        # FF D pins and primary outputs are sinks
        assert any(name.startswith("add.s") for name in sink_names)

    def test_nodes_exclude_constants(self):
        c = Circuit("t")
        a = c.input_bus("a", 1)
        c.set_output("o", Bus("o", [c.and_(a[0], c.const(1))]))
        from repro.hdl.sim import Simulator

        Simulator(c)
        dag = combinational_dag(c)
        assert all(g.kind not in ("CONST0", "CONST1") for g in dag.nodes)
        assert any(s.name.startswith("const") for s in dag.sources)

    def test_nodes_in_topological_order(self):
        c = small_circuit()
        from repro.hdl.sim import Simulator

        Simulator(c)
        dag = combinational_dag(c)
        seen = {s.index for s in dag.sources}
        for gate in dag.nodes:
            for sig in gate.inputs:
                from repro.hdl.gates import Gate

                if isinstance(sig.driver, Gate) and sig.driver.kind.startswith("CONST"):
                    continue
                assert sig.index in seen, f"{gate} used {sig.name} before def"
            seen.add(gate.output.index)
