"""Tests for the deterministic RNG helpers."""

import pytest

from repro.util.rng import SplitMix64, make_rng, random_bytes, random_word


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_seeds_differ(self):
        assert make_rng(5).random() != make_rng(6).random()


class TestRandomBytes:
    def test_length(self):
        assert len(random_bytes(1, 37)) == 37

    def test_deterministic(self):
        assert random_bytes(9, 16) == random_bytes(9, 16)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            random_bytes(1, -1)


class TestRandomWord:
    def test_fits_width(self):
        for width in (1, 8, 16, 31):
            assert 0 <= random_word(3, width) < (1 << width)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            random_word(1, 0)


class TestSplitMix64:
    def test_deterministic(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_below_in_range(self):
        rng = SplitMix64(7)
        for _ in range(200):
            assert 0 <= rng.below(13) < 13

    def test_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).below(0)

    def test_uniform_in_unit_interval(self):
        rng = SplitMix64(11)
        samples = [rng.uniform() for _ in range(500)]
        assert all(0.0 <= x < 1.0 for x in samples)
        assert abs(sum(samples) / len(samples) - 0.5) < 0.08

    def test_outputs_are_64_bit(self):
        rng = SplitMix64(3)
        for _ in range(20):
            assert 0 <= rng.next() < (1 << 64)
