"""Unit and property tests for repro.util.lfsr."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.lfsr import GaloisLfsr, Lfsr, PRIMITIVE_TAPS, max_period, taps_to_mask


class TestTaps:
    def test_default_16_bit_taps_are_the_classic_polynomial(self):
        assert PRIMITIVE_TAPS[16] == (16, 14, 13, 11)

    def test_taps_to_mask(self):
        assert taps_to_mask((16, 14, 13, 11), 16) == 0b1011010000000000

    def test_taps_out_of_range(self):
        with pytest.raises(ValueError):
            taps_to_mask((17,), 16)
        with pytest.raises(ValueError):
            taps_to_mask((0,), 16)

    def test_max_period(self):
        assert max_period(16) == 65535
        assert max_period(3) == 7

    def test_max_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            max_period(0)


class TestLfsrBasics:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(16, seed=0)
        with pytest.raises(ValueError):
            GaloisLfsr(16, seed=0)

    def test_seed_truncated_to_width(self):
        lfsr = Lfsr(4, seed=0x13)  # truncates to 0x3
        assert lfsr.state == 0x3

    def test_unknown_width_needs_explicit_taps(self):
        with pytest.raises(ValueError):
            Lfsr(21)
        lfsr = Lfsr(21, seed=1, taps=(21, 19))
        assert lfsr.width == 21

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(0, seed=1)

    def test_step_returns_lsb(self):
        lfsr = Lfsr(16, seed=0x0001)
        assert lfsr.step() == 1

    def test_next_word_is_width_steps(self):
        a = Lfsr(16, seed=0xACE1)
        b = Lfsr(16, seed=0xACE1)
        word = a.next_word()
        for _ in range(16):
            b.step()
        assert word == b.state

    def test_next_bits_count(self):
        lfsr = Lfsr(16, seed=0xACE1)
        assert len(lfsr.next_bits(23)) == 23

    def test_next_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            Lfsr(16, seed=1).next_bits(-1)

    def test_peek_does_not_advance(self):
        lfsr = Lfsr(16, seed=0xACE1)
        assert lfsr.peek() == lfsr.peek() == 0xACE1

    def test_copy_is_independent(self):
        lfsr = Lfsr(16, seed=0xACE1)
        clone = lfsr.copy()
        lfsr.next_word()
        assert clone.state == 0xACE1
        assert lfsr.state != 0xACE1


@pytest.mark.parametrize("width", [3, 4, 5, 6, 7, 8, 9, 10])
class TestMaximalPeriod:
    def test_fibonacci_full_period(self, width):
        lfsr = Lfsr(width, seed=1)
        seen = {lfsr.state}
        for _ in range(max_period(width) - 1):
            lfsr.step()
            seen.add(lfsr.state)
        assert len(seen) == max_period(width)
        lfsr.step()
        assert lfsr.state == 1  # back to the seed: exact full cycle

    def test_galois_full_period(self, width):
        lfsr = GaloisLfsr(width, seed=1)
        seen = {lfsr.state}
        for _ in range(max_period(width) - 1):
            lfsr.step()
            seen.add(lfsr.state)
        assert len(seen) == max_period(width)

    def test_never_reaches_zero(self, width):
        lfsr = Lfsr(width, seed=1)
        for _ in range(max_period(width)):
            lfsr.step()
            assert lfsr.state != 0


class TestSequenceProperties:
    @given(st.integers(1, 0xFFFF))
    @settings(max_examples=30)
    def test_deterministic_for_seed(self, seed):
        a = Lfsr(16, seed=seed)
        b = Lfsr(16, seed=seed)
        assert [a.step() for _ in range(50)] == [b.step() for _ in range(50)]

    def test_16_bit_word_sequence_is_balanced(self):
        lfsr = Lfsr(16, seed=0xACE1)
        words = [lfsr.next_word() for _ in range(2048)]
        ones = sum(bin(w).count("1") for w in words)
        total = 16 * len(words)
        assert abs(ones / total - 0.5) < 0.02

    def test_different_seeds_diverge(self):
        a = Lfsr(16, seed=0xACE1)
        b = Lfsr(16, seed=0xACE2)
        assert [a.next_word() for _ in range(8)] != [b.next_word() for _ in range(8)]
