"""Unit and property tests for repro.util.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    check_uint,
    chunk_bits,
    extract_field,
    hamming_distance,
    insert_field,
    int_to_bits,
    mask,
    parity,
    popcount,
    reverse_bits,
    rotl,
    rotr,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(16) == 0xFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestCheckUint:
    def test_accepts_in_range(self):
        assert check_uint(7, 3) == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_uint(-1, 8)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            check_uint(8, 3)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_uint(True, 1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            check_uint("3", 4)


class TestRotations:
    def test_paper_example_left(self):
        # Fig. 8: 0x48D0 rotated left twice becomes 0x2341.
        assert rotl(0x48D0, 2, 16) == 0x2341

    def test_paper_example_right(self):
        # Fig. 8: 0x2341 rotated right six times becomes 0x048D.
        assert rotr(0x2341, 6, 16) == 0x048D

    def test_rotl_zero_amount(self):
        assert rotl(0xBEEF, 0, 16) == 0xBEEF

    def test_rotl_full_width_is_identity(self):
        assert rotl(0xBEEF, 16, 16) == 0xBEEF

    def test_rotl_wraps_amount(self):
        assert rotl(0xBEEF, 18, 16) == rotl(0xBEEF, 2, 16)

    def test_rotr_zero_width_bus(self):
        assert rotr(0, 5, 0) == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            rotl(1, -1, 8)
        with pytest.raises(ValueError):
            rotr(1, -2, 8)

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rotl(0x100, 1, 8)

    @given(st.integers(0, 0xFFFF), st.integers(0, 31))
    def test_rotl_rotr_inverse(self, value, amount):
        assert rotr(rotl(value, amount, 16), amount, 16) == value

    @given(st.integers(0, 0xFFFF), st.integers(0, 31))
    def test_rotation_preserves_popcount(self, value, amount):
        assert popcount(rotl(value, amount, 16)) == popcount(value)

    @given(st.integers(0, 0xFF), st.integers(0, 7), st.integers(0, 7))
    def test_rotl_composes(self, value, a, b):
        assert rotl(rotl(value, a, 8), b, 8) == rotl(value, a + b, 8)


class TestFields:
    def test_extract_paper_slice(self):
        # V = 0xCA06, slice [11:8] is 0b1010 (Fig. 8 derivation).
        assert extract_field(0xCA06, 11, 8) == 0b1010

    def test_extract_single_bit(self):
        assert extract_field(0b1000, 3, 3) == 1

    def test_extract_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            extract_field(0xFF, 2, 5)

    def test_extract_rejects_negative_low(self):
        with pytest.raises(ValueError):
            extract_field(0xFF, 3, -1)

    def test_insert_paper_replacement(self):
        # Fig. 8: replacing bits [5:2] of 0xCA06 with 0 gives 0xCA02.
        assert insert_field(0xCA06, 0b0000, 5, 2) == 0xCA02

    def test_insert_rejects_wide_field(self):
        with pytest.raises(ValueError):
            insert_field(0, 0b100, 1, 0)

    def test_insert_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            insert_field(0, 0, 0, 1)

    @given(st.integers(0, 0xFFFF), st.integers(0, 15), st.integers(0, 15))
    def test_insert_then_extract_roundtrip(self, value, a, b):
        high, low = max(a, b), min(a, b)
        field = extract_field(value, high, low)
        assert insert_field(value, field, high, low) == value

    @given(st.integers(0, 0xFFFF), st.integers(0, 15), st.integers(0, 15),
           st.integers(0, 0xFFFF))
    def test_insert_only_touches_window(self, value, a, b, raw_field):
        high, low = max(a, b), min(a, b)
        field = raw_field & mask(high - low + 1)
        result = insert_field(value, field, high, low)
        window_mask = mask(high - low + 1) << low
        assert result & ~window_mask == value & ~window_mask
        assert extract_field(result, high, low) == field


class TestBitLists:
    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_bits_to_int_roundtrip(self):
        assert bits_to_int(int_to_bits(0xABCD, 16)) == 0xABCD

    def test_bits_to_int_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_bytes_to_bits_lsb_first_per_byte(self):
        assert bytes_to_bits(b"\x01\x80") == [1, 0, 0, 0, 0, 0, 0, 0,
                                              0, 0, 0, 0, 0, 0, 0, 1]

    def test_bits_to_bytes_rejects_ragged(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    @given(st.binary(max_size=64))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_chunk_bits_exact(self):
        assert chunk_bits([1, 0, 1, 1], 2) == [[1, 0], [1, 1]]

    def test_chunk_bits_ragged_tail(self):
        assert chunk_bits([1, 0, 1], 2) == [[1, 0], [1]]

    def test_chunk_bits_empty(self):
        assert chunk_bits([], 4) == []

    def test_chunk_bits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            chunk_bits([1], 0)


class TestCountingHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0xFFFF) == 16

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_parity(self):
        assert parity(0b1011) == 1
        assert parity(0b1001) == 0

    def test_hamming_distance(self):
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(7, 7) == 0

    def test_hamming_rejects_negative(self):
        with pytest.raises(ValueError):
            hamming_distance(-1, 2)

    def test_reverse_bits(self):
        assert reverse_bits(0b0001, 4) == 0b1000
        assert reverse_bits(0b1101, 4) == 0b1011

    @given(st.integers(0, 0xFFFF))
    def test_reverse_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value
