"""Tests for the CRC-16/CCITT-FALSE implementation."""

from hypothesis import given, strategies as st

from repro.util.crc import Crc16, crc16_ccitt


class TestKnownVectors:
    def test_check_string(self):
        # The standard CRC-16/CCITT-FALSE check value.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_is_init(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_single_zero_byte(self):
        assert crc16_ccitt(b"\x00") == 0xE1F0

    def test_detects_single_bit_flip(self):
        base = crc16_ccitt(b"hello world")
        assert crc16_ccitt(b"hello worle") != base


class TestIncremental:
    @given(st.binary(max_size=64), st.integers(0, 63))
    def test_split_equals_whole(self, data, cut):
        cut = min(cut, len(data))
        whole = crc16_ccitt(data)
        inc = Crc16().update(data[:cut]).update(data[cut:]).value
        assert inc == whole

    def test_chaining_returns_self(self):
        crc = Crc16()
        assert crc.update(b"ab") is crc

    @given(st.binary(min_size=1, max_size=32))
    def test_crc_is_16_bits(self, data):
        assert 0 <= crc16_ccitt(data) <= 0xFFFF


class TestTableVsBitSerial:
    def test_table_form_matches_golden_model(self):
        # The production table form is generated from the bit-serial
        # golden model; this differential pins them together anyway so
        # an edit to either cannot drift silently.
        import random

        from repro.util.crc import crc16_ccitt_bitserial

        rng = random.Random(20050307)
        for _ in range(300):
            data = rng.randbytes(rng.randint(0, 64))
            init = rng.randrange(0x10000)
            assert crc16_ccitt(data, init) == crc16_ccitt_bitserial(data, init)
