"""Unit tests: AdmissionController, ChannelRouter, RelayConfig."""

import pytest

from repro.core.errors import SessionError
from repro.kex.keyring import normalize_tenant_id
from repro.relay import AdmissionController, ChannelRouter, RelayConfig

A = normalize_tenant_id("a")
B = normalize_tenant_id("b")


# -- admission: connect-time gate ------------------------------------------


def test_global_quota_caps_connections():
    adm = AdmissionController(max_links=2, max_links_per_tenant=2)
    assert adm.admit_connection(0.0) is None
    assert adm.admit_connection(0.0) is None
    assert adm.admit_connection(0.0) == "global-quota"
    adm.release()
    assert adm.admit_connection(0.0) is None


def test_token_bucket_starts_full_and_caps_at_burst():
    adm = AdmissionController(max_links=100, max_links_per_tenant=100,
                              handshake_rate=2.0, handshake_burst=3)
    verdicts = [adm.admit_connection(0.0) for _ in range(5)]
    assert verdicts == [None, None, None, "handshake-rate", "handshake-rate"]
    # 10 s at 2/s would be 20 tokens; the burst caps the bucket at 3.
    verdicts = [adm.admit_connection(10.0) for _ in range(5)]
    assert verdicts == [None, None, None, "handshake-rate", "handshake-rate"]


def test_token_bucket_refills_fractionally():
    adm = AdmissionController(max_links=100, max_links_per_tenant=100,
                              handshake_rate=2.0, handshake_burst=1)
    assert adm.admit_connection(0.0) is None
    assert adm.admit_connection(0.25) == "handshake-rate"  # 0.5 tokens
    assert adm.admit_connection(0.5) is None               # 1.0 token


def test_rate_zero_disables_the_bucket():
    adm = AdmissionController(max_links=1000, max_links_per_tenant=1000)
    assert all(adm.admit_connection(0.0) is None for _ in range(100))


def test_quota_is_checked_before_the_token():
    """A full relay spends no tokens on connections it cannot take."""
    adm = AdmissionController(max_links=1, max_links_per_tenant=1,
                              handshake_rate=1.0, handshake_burst=1)
    assert adm.admit_connection(0.0) is None
    assert adm.admit_connection(100.0) == "global-quota"
    adm.release()
    # The refused attempt left the bucket's token intact.
    assert adm.admit_connection(100.0) is None


# -- admission: tenant gate ------------------------------------------------


def test_tenant_quota_and_release():
    adm = AdmissionController(max_links=10, max_links_per_tenant=2)
    assert adm.admit_tenant(A) is None
    assert adm.admit_tenant(A) is None
    assert adm.admit_tenant(A) == "tenant-quota"
    assert adm.admit_tenant(B) is None  # siblings unaffected
    adm.release(A)
    assert adm.admit_tenant(A) is None
    assert adm.tenant_links == {A: 2, B: 1}


def test_allow_list_refuses_unknown_tenants():
    adm = AdmissionController(max_links=10, max_links_per_tenant=10,
                              allowed_tenants=frozenset({A}))
    assert adm.admit_tenant(A) is None
    assert adm.admit_tenant(B) == "unknown-tenant"


def test_release_drops_empty_tenant_entries():
    adm = AdmissionController(max_links=10, max_links_per_tenant=10)
    adm.admit_connection(0.0)
    adm.admit_tenant(A)
    adm.release(A)
    assert adm.tenant_links == {}
    assert adm.active_links == 0
    adm.release()  # over-release never goes negative
    assert adm.active_links == 0


def test_constructor_validates():
    with pytest.raises(ValueError, match="max_links"):
        AdmissionController(max_links=0, max_links_per_tenant=1)
    with pytest.raises(ValueError, match="handshake_burst"):
        AdmissionController(max_links=1, max_links_per_tenant=1,
                            handshake_burst=0)


# -- router ----------------------------------------------------------------


def test_router_scopes_channels_per_tenant():
    router = ChannelRouter()
    router.join(1, A, b"room")
    router.join(2, A, b"room")
    router.join(3, B, b"room")  # same channel name, different tenant
    assert router.peers(1) == [2]
    assert router.peers(3) == []
    assert len(router) == 3


def test_router_join_is_single_shot():
    router = ChannelRouter()
    router.join(1, A, b"room")
    with pytest.raises(ValueError, match="already joined"):
        router.join(1, A, b"other")


def test_router_leave_cleans_empty_groups():
    router = ChannelRouter()
    router.join(1, A, b"room")
    router.join(2, A, b"room")
    assert router.leave(1) == (A, b"room")
    assert router.peers(2) == []
    assert router.leave(2) == (A, b"room")
    assert router.snapshot() == {}
    assert router.leave(2) is None  # idempotent
    assert router.leave(99) is None  # never joined


def test_router_group_size_and_snapshot():
    router = ChannelRouter()
    assert router.join(1, A, b"room") == 1
    assert router.join(2, A, b"room") == 2
    assert router.group_size(A, b"room") == 2
    assert router.group_size(B, b"room") == 0
    snap = router.snapshot()
    assert snap == {(A, b"room"): [1, 2]}


# -- config ----------------------------------------------------------------


def test_config_validates_policy():
    RelayConfig().validate()  # defaults are sane
    with pytest.raises(SessionError, match="egress_policy"):
        RelayConfig(egress_policy="carrier-pigeon").validate()
    with pytest.raises(SessionError, match="max_links"):
        RelayConfig(max_links=0).validate()
    with pytest.raises(SessionError, match="egress_queue_payloads"):
        RelayConfig(egress_queue_payloads=0).validate()


def test_config_defaults_to_the_fast_engine():
    """The relay re-encrypts once per receiver, so its links run the
    word-level engine by default (wire-identical to reference)."""
    assert RelayConfig().engine == "fast"
    RelayConfig(engine="reference").validate()
    with pytest.raises(ValueError, match="engine"):
        RelayConfig(engine="carrier-pigeon").validate()


def test_config_allow_list_normalizes():
    cfg = RelayConfig(allowed_tenants=("acme", b"globex"))
    allowed = cfg.normalized_allow_list()
    assert allowed == frozenset({normalize_tenant_id("acme"),
                                 normalize_tenant_id("globex")})
    assert RelayConfig().normalized_allow_list() is None
