"""The relay scale acceptance test: 500+ concurrent links, 2 tenants.

The deterministic in-memory equivalent of the "millions of users" claim
at CI scale: the sans-IO core sustains hundreds of concurrent memory
links across multiple tenants, routes payloads byte-identically within
every ``(tenant, channel)`` group, and — under a seeded flood on top of
the standing population — sheds with exactly-reconciled counters
instead of wedging.  Resumption tickets keep all 500 handshakes
ladder-free, which is what makes this cheap enough for tier-1.
"""

import random

import pytest

from repro.relay import ManualClock, MemoryRelayHub, RelayConfig

TENANTS = ("alpha", "beta")
LINKS_PER_TENANT = 250          # 500 total, the acceptance floor
CHANNELS_PER_TENANT = 25        # 10 members per (tenant, channel) group


def test_relay_sustains_500_links_and_routes_byte_identically():
    rng = random.Random(20050307)
    clock = ManualClock()
    hub = MemoryRelayHub(
        config=RelayConfig(max_links=600, max_links_per_tenant=300,
                           egress_queue_payloads=64),
        clock=clock)

    # -- build the standing population ------------------------------------
    groups = {}
    for tenant in TENANTS:
        for i in range(LINKS_PER_TENANT):
            channel = b"ch-%d" % (i % CHANNELS_PER_TENANT)
            client = hub.connect(tenant, channel=channel,
                                 ticket=hub.mint_ticket(tenant))
            assert client is not None and client.open, \
                f"link {i} for {tenant} failed to open"
            groups.setdefault((tenant, channel), []).append(client)
    assert hub.core.active_links == 2 * LINKS_PER_TENANT
    assert hub.core.tenants() == {t: LINKS_PER_TENANT for t in TENANTS}
    assert len(groups) == 2 * CHANNELS_PER_TENANT
    assert hub.shed_by_reason() == {}

    # -- byte-identical routing within every group ------------------------
    sent = {}
    for key, members in groups.items():
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 128)))
        sent[key] = payload
        members[0].send(payload)
    for key, members in groups.items():
        sender, receivers = members[0], members[1:]
        for receiver in receivers:
            receiver.pump()
            assert receiver.received == [sent[key]], \
                f"{key}: receiver {receiver.link_id} got {receiver.received!r}"
        sender.pump()
        assert sender.received == []  # no self-delivery, no cross-talk
    routed = hub.core.routed_payloads
    assert routed == len(groups)

    # -- a seeded flood on top of the standing population -----------------
    # 150 extra connection attempts against the 100 remaining slots:
    # exactly 100 admit and exactly 50 are global-quota sheds.
    flood = []
    for i in range(150):
        client = hub.connect(TENANTS[i % 2],
                             ticket=hub.mint_ticket(TENANTS[i % 2]))
        if client is not None:
            flood.append(client)
    assert len(flood) == 100
    assert hub.core.active_links == 600
    assert hub.shed_by_reason() == {"global-quota": 50}

    # No wedge, no unbounded queues: the standing groups still route,
    # and no link's egress queue exceeds its bound.
    probe_key = (TENANTS[0], b"ch-0")
    probe = groups[probe_key]
    probe[0].send(b"after the flood")
    probe[1].pump()
    assert probe[1].received[-1] == b"after the flood"
    bound = hub.core.config.egress_queue_payloads
    assert all(len(link.egress) <= bound
               for link in hub.core._links.values())

    # -- drain the flood wave and prove slot recycling --------------------
    for client in flood:
        client.close()
    assert hub.core.active_links == 2 * LINKS_PER_TENANT
    again = hub.connect(TENANTS[0], ticket=hub.mint_ticket(TENANTS[0]))
    assert again is not None and again.open


@pytest.mark.soak
def test_relay_ramp_soak():
    """Hours-of-churn compressed: repeated ramp / route / shed / drain
    cycles with a hand-stepped clock.  Excluded from tier-1 (`-m soak`)."""
    rng = random.Random(77)
    clock = ManualClock()
    hub = MemoryRelayHub(
        config=RelayConfig(max_links=700, max_links_per_tenant=400,
                           idle_timeout_s=120.0, egress_queue_payloads=32),
        clock=clock)
    for cycle in range(5):
        groups = {}
        for i in range(600):
            tenant = TENANTS[i % 2]
            channel = b"soak-%d" % (i % 20)
            client = hub.connect(tenant, channel=channel,
                                 ticket=hub.mint_ticket(tenant))
            assert client is not None and client.open
            groups.setdefault((tenant, channel), []).append(client)
        assert hub.core.active_links == 600
        for members in groups.values():
            payload = bytes(rng.randrange(256) for _ in range(64))
            members[0].send(payload)
            for receiver in members[1:]:
                receiver.pump()
                assert receiver.received[-1] == payload
        # A third of the fleet goes silent and must be shed by poll.
        silent = [m for members in groups.values() for m in members[::3]]
        clock.advance(60.0)
        for members in groups.values():
            for client in members:
                if client not in silent and client.open:
                    client.send(b"keepalive")
        clock.advance(60.0)
        hub.poll()
        for client in silent:
            assert not client.open
        # Drain the rest; every slot must recycle for the next cycle.
        for members in groups.values():
            for client in members:
                if client.open:
                    client.close()
        assert hub.core.active_links == 0
    sheds = hub.shed_by_reason()
    assert set(sheds) == {"idle-timeout"}
    assert sheds["idle-timeout"] == 5 * 200
