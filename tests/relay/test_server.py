"""The asyncio relay adapter, the facade, and the relay CLI command."""

import asyncio
import json

import pytest

import repro
from repro.core.errors import HandshakeError
from repro.kex.handshake import KexConfig
from repro.kex.keyring import TenantKeyring
from repro.relay import RelayConfig
from repro.relay.server import RelayClient, RelayServer


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


ROOT = b"relay-server-test-fleet-root!!!!"


def client_kex(keyring: TenantKeyring, tenant: str) -> KexConfig:
    return KexConfig(auth_secret=keyring.tenant_secret(tenant),
                     modes=("ecdh",), tenant_id=tenant)


class TestRelayServer:
    def test_two_clients_route_over_tcp(self):
        keyring = TenantKeyring(ROOT)

        async def body():
            async with RelayServer(keyring, port=0) as server:
                a = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                b = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                await a.send(b"over tcp")
                assert await b.receive() == b"over tcp"
                assert server.core.active_links == 2
                await a.close()
                await b.close()
        run(body())

    def test_revoked_tenant_refused_over_tcp(self):
        keyring = TenantKeyring(ROOT)
        stale = client_kex(keyring, "doomed")  # secret learned earlier
        keyring.revoke("doomed")

        async def body():
            async with RelayServer(keyring, port=0) as server:
                # The relay sheds the link mid-handshake; the client
                # sees the transport die during key exchange.
                with pytest.raises(HandshakeError, match="during the handshake"):
                    await RelayClient.connect(
                        "127.0.0.1", server.port, kex=stale,
                        channel=b"room", timeout=5.0)
                assert server.core.shed.get("tenant-revoked") == 1
                assert server.core.active_links == 0
        run(body())

    def test_quota_refusal_closes_the_transport(self):
        keyring = TenantKeyring(ROOT)
        config = RelayConfig(max_links=1, max_links_per_tenant=1)

        async def body():
            async with RelayServer(keyring, config=config, port=0) as server:
                a = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                with pytest.raises((HandshakeError, ConnectionError)):
                    await RelayClient.connect(
                        "127.0.0.1", server.port,
                        kex=client_kex(keyring, "acme"),
                        channel=b"room", timeout=5.0)
                assert server.core.shed.get("global-quota") == 1
                await a.close()
        run(body())

    def test_health_endpoint_reports_core_stats(self):
        keyring = TenantKeyring(ROOT)

        async def body():
            async with RelayServer(keyring, port=0, metrics_port=0) as server:
                a = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                from repro.obs.http import http_get
                status, body_text = await asyncio.to_thread(
                    http_get, "127.0.0.1", server.metrics_endpoint.port,
                    path="/healthz")
                assert status == 200
                document = json.loads(body_text)
                assert document["status"] == "ok"
                assert document["active_links"] == 1
                assert document["tenants"] == {"acme": 1}
                await a.close()
        run(body())


class TestFacade:
    def test_relay_serve_accepts_raw_root_and_keyring(self):
        async def body():
            async with repro.relay_serve(ROOT, port=0) as server:
                keyring = TenantKeyring(ROOT)
                a = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                b = await RelayClient.connect(
                    "127.0.0.1", server.port,
                    kex=client_kex(keyring, "acme"), channel=b"room")
                await a.send(b"via facade")
                assert await b.receive() == b"via facade"
                await a.close()
                await b.close()
        run(body())

    def test_relay_serve_is_lazy_and_unstarted(self):
        server = repro.relay_serve(TenantKeyring(ROOT))
        assert isinstance(server, RelayServer)
        with pytest.raises(RuntimeError, match="not started"):
            server.port


class TestCli:
    def test_relay_requires_a_key_source(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["relay"])
        assert "required" in capsys.readouterr().err

    def test_relay_rejects_bad_hex(self, capsys):
        from repro.cli import main
        assert main(["relay", "--fleet-root", "zz"]) == 2
        assert "not valid hex" in capsys.readouterr().err

    def test_relay_loads_tenant_config(self, tmp_path, capsys):
        """A malformed tenant config dies with the CLI's one-line error
        (the happy path is covered end-to-end in the server tests)."""
        from repro.cli import main
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": {}}))
        assert main(["relay", "--tenant-config", str(path)]) == 2
        assert "fleet_root_hex" in capsys.readouterr().err
