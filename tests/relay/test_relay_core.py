"""RelayCore behavior: routing, policy, deadlines, shed accounting.

Everything runs on the deterministic in-memory harness — a real relay
core, real client-side LinkProtocol machines, a hand-stepped clock.
"""

import pytest

from repro.core.errors import SessionError, TenantRevokedError
from repro.kex.keyring import TenantKeyring, normalize_tenant_id
from repro.obs import core as _obs
from repro.relay import (
    ChannelJoined,
    LinkOpen,
    LinkRejected,
    LinkRetired,
    LinkShed,
    ManualClock,
    MemoryRelayHub,
    PayloadRouted,
    RelayConfig,
    RelayCore,
)


def hub_with(clock=None, **overrides):
    defaults = dict(max_links=16, max_links_per_tenant=16)
    defaults.update(overrides)
    return MemoryRelayHub(config=RelayConfig(**defaults), clock=clock)


# -- construction ----------------------------------------------------------


def test_core_requires_a_keyring():
    with pytest.raises(SessionError, match="TenantKeyring"):
        RelayCore(b"raw root bytes are not a keyring")


def test_core_validates_config_up_front():
    with pytest.raises(SessionError, match="egress_policy"):
        RelayCore(TenantKeyring(b"x" * 32),
                  RelayConfig(egress_policy="bogus"))


# -- join / route ----------------------------------------------------------


def test_join_ack_precedes_routed_traffic():
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    b = hub.connect("t", channel=b"room")
    assert a.ack == b"+room" and b.ack == b"+room"
    a.send(b"one")
    a.send(b"two")
    b.pump()
    assert b.received == [b"one", b"two"]
    # The sender hears nothing back (no echo, no self-delivery).
    a.pump()
    assert a.received == []


def test_routing_is_tenant_scoped():
    """Same channel name, different tenants: never cross-routed."""
    hub = hub_with()
    a1 = hub.connect("alpha", channel=b"room")
    a2 = hub.connect("alpha", channel=b"room")
    b1 = hub.connect("beta", channel=b"room")
    a1.send(b"alpha secret")
    a2.pump()
    b1.pump()
    assert a2.received == [b"alpha secret"]
    assert b1.received == []


def test_fanout_reencrypts_per_receiver():
    """Receivers share plaintext but never ciphertext: each link has
    its own session keys, so the wire bytes differ per receiver."""
    hub = hub_with()
    sender = hub.connect("t", channel=b"room")
    r1 = hub.connect("t", channel=b"room")
    r2 = hub.connect("t", channel=b"room")
    sender.send(b"fan this out")
    wire1 = hub.core.data_to_send(r1.link_id)
    wire2 = hub.core.data_to_send(r2.link_id)
    assert wire1 and wire2 and wire1 != wire2
    r1._absorb(wire1)
    r2._absorb(wire2)
    assert r1.received == r2.received == [b"fan this out"]


def test_routed_events_and_counters():
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    hub.connect("t", channel=b"room")
    events = a.send(b"xyz")
    routed = [e for e in events if isinstance(e, PayloadRouted)]
    assert len(routed) == 1
    assert routed[0].receivers == 1 and routed[0].n_bytes == 3
    assert hub.core.routed_payloads == 1
    assert hub.core.routed_bytes == 3
    opens = [e for e in hub.events if isinstance(e, LinkOpen)]
    joins = [e for e in hub.events if isinstance(e, ChannelJoined)]
    assert len(opens) == 2 and len(joins) == 2


# -- admission-path refusals ----------------------------------------------


def test_revoked_tenant_refused_with_typed_event():
    hub = hub_with()
    secret = hub.tenant_secret("doomed")  # client learned it pre-revocation
    hub.keyring.revoke("doomed")
    client = hub.connect("doomed", auth_secret=secret)
    assert client is not None and not client.open
    rejects = [e for e in hub.events if isinstance(e, LinkRejected)]
    assert len(rejects) == 1
    assert rejects[0].reason == "tenant-revoked"
    assert rejects[0].tenant_id == normalize_tenant_id("doomed")
    assert hub.shed_by_reason() == {"tenant-revoked": 1}


def test_allow_list_rejects_authenticated_stranger():
    hub = hub_with(allowed_tenants=("friend",))
    friend = hub.connect("friend", channel=b"room")
    stranger = hub.connect("stranger")
    assert friend.open
    assert not stranger.open
    rejects = [e for e in hub.events if isinstance(e, LinkRejected)]
    assert [e.reason for e in rejects] == ["unknown-tenant"]


def test_tenant_quota_sheds_excess_links():
    hub = hub_with(max_links_per_tenant=2)
    assert hub.connect("t").open
    assert hub.connect("t").open
    third = hub.connect("t")
    assert not third.open
    assert hub.shed_by_reason() == {"tenant-quota": 1}
    assert hub.core.tenants() == {"t": 2}


# -- per-link budgets ------------------------------------------------------


def test_frame_budget_sheds_chatty_links():
    hub = hub_with(max_frames_per_link=3)
    a = hub.connect("t", channel=b"room")  # the JOIN is frame 1
    a.send(b"2")
    a.send(b"3")
    events = a.send(b"4")
    sheds = [e for e in events if isinstance(e, LinkShed)]
    assert [e.reason for e in sheds] == ["budget-frames"]
    assert not a.open
    assert hub.shed_by_reason() == {"budget-frames": 1}


def test_byte_budget_sheds_heavy_links():
    hub = hub_with(max_bytes_per_link=100)
    a = hub.connect("t", channel=b"room")  # 4 budget bytes
    a.send(b"x" * 50)
    events = a.send(b"x" * 50)  # 104 > 100
    assert [e.reason for e in events if isinstance(e, LinkShed)] \
        == ["budget-bytes"]
    assert hub.shed_by_reason() == {"budget-bytes": 1}


def test_oversized_join_is_shed():
    hub = hub_with(max_channel_bytes=4)
    a = hub.connect("t")
    a.proto.send_payload(b"roomy")  # 5 > 4
    a.pump()
    assert not a.open
    assert hub.shed_by_reason() == {"bad-join": 1}


# -- deadlines -------------------------------------------------------------


def test_handshake_deadline_sheds_stalled_links():
    clock = ManualClock()
    hub = hub_with(clock=clock, handshake_timeout_s=5.0)
    stalled = hub.connect("t", pump=False)  # ClientHello never delivered
    live = hub.connect("t", channel=b"room")
    assert hub.poll() == []  # t=0: nobody is late
    clock.advance(5.0)
    events = hub.poll()
    assert [e.reason for e in events if isinstance(e, LinkShed)] \
        == ["handshake-timeout"]
    assert not hub.core.has_link(stalled.link_id)
    assert live.open


def test_idle_deadline_sheds_silent_links():
    clock = ManualClock()
    hub = hub_with(clock=clock, idle_timeout_s=30.0)
    quiet = hub.connect("t", channel=b"room")
    busy = hub.connect("t", channel=b"room")
    clock.advance(29.0)
    busy.send(b"keepalive")  # inbound bytes refresh busy's activity
    clock.advance(1.0)
    events = hub.poll()
    shed_ids = [e.link_id for e in events if isinstance(e, LinkShed)]
    assert shed_ids == [quiet.link_id]
    assert busy.open


def test_outbound_drain_counts_as_activity():
    """A reader that keeps draining stays alive even if it never sends."""
    clock = ManualClock()
    hub = hub_with(clock=clock, idle_timeout_s=30.0)
    writer = hub.connect("t", channel=b"room")
    reader = hub.connect("t", channel=b"room")
    for _ in range(3):
        clock.advance(20.0)
        writer.send(b"tick")
        reader.pump()  # drains -> activity
    assert hub.poll() == [] or not any(
        e.link_id == reader.link_id for e in hub.poll())
    assert reader.open


def test_poll_runs_metrics_eviction():
    clock = ManualClock()
    hub = hub_with(clock=clock, idle_timeout_s=0.0, metrics_eviction_s=60.0)
    a = hub.connect("t", channel=b"room")
    assert f"relay-{a.link_id}" in hub.core.metrics.sessions
    clock.advance(120.0)
    hub.poll()
    # The link went idle past the eviction window: its metrics slot is
    # folded into the retired aggregates even though the link lives on.
    assert f"relay-{a.link_id}" not in hub.core.metrics.sessions
    assert hub.core.metrics.retired_count == 1
    assert hub.core.has_link(a.link_id)


# -- teardown and accounting ----------------------------------------------


def test_protocol_garbage_after_open_is_shed():
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    events = hub.core.receive_data(a.link_id, b"\xff" * 64)
    assert [e.reason for e in events if isinstance(e, LinkShed)] \
        == ["protocol-error"]
    assert hub.shed_by_reason() == {"protocol-error": 1}


def test_peer_eof_retires_cleanly_without_shed():
    """The wire format has no goodbye frame — a peer leaves by closing
    its transport, which reaches the core as EOF."""
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    b = hub.connect("t", channel=b"room")
    events = hub.core.receive_eof(a.link_id)
    assert not hub.core.has_link(a.link_id)
    retired = [e for e in events if isinstance(e, LinkRetired)]
    assert [e.reason for e in retired] == ["peer-closed"]
    assert hub.shed_by_reason() == {}
    # The group no longer routes at the departed link.
    routed = [e for e in b.send(b"anyone there?")
              if isinstance(e, PayloadRouted)]
    assert routed[0].receivers == 0
    assert hub.core.active_links == 1


def test_dead_link_feeds_are_noops():
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    a.close()
    assert hub.core.receive_data(a.link_id, b"late bytes") == []
    assert hub.core.receive_eof(a.link_id) == []
    assert hub.core.data_to_send(a.link_id) == b""
    assert hub.core.close_link(a.link_id) == []
    assert hub.core.link_tenant(a.link_id) is None


def test_stats_snapshot():
    hub = hub_with()
    hub.connect("t", channel=b"room")
    hub.connect("t", channel=b"room")
    stats = hub.core.stats()
    assert stats["active_links"] == 2
    assert stats["tenants"] == {"t": 2}
    assert stats["channels"] == 1
    assert stats["shed"] == {}
    assert stats["metrics_sessions"] == 2


def test_quota_slots_recycle_after_retirement():
    hub = hub_with(max_links=2)
    a = hub.connect("t")
    b = hub.connect("t")
    assert a.open and b.open
    assert hub.connect("t") is None  # the cap refuses the third
    assert hub.shed_by_reason() == {"global-quota": 1}
    a.close()
    b.close()
    assert hub.core.active_links == 0
    again = hub.connect("t", channel=b"room")
    assert again is not None and again.open


# -- obs integration -------------------------------------------------------


def test_obs_gauges_and_counters_track_the_core():
    registry = _obs.ObsRegistry()
    previous = _obs.set_registry(registry)
    try:
        hub = hub_with(max_links_per_tenant=1)
        a = hub.connect("acme", channel=b"room")
        hub.connect("acme")  # tenant-quota shed
        snap = registry.snapshot()
        assert snap["gauges"]["repro_relay_links_active"] == 1
        assert snap["gauges"]["repro_relay_tenant_links{tenant=acme}"] == 1
        assert snap["counters"][
            "repro_relay_shed_total{reason=tenant-quota}"] == 1
        a.close()
        snap = registry.snapshot()
        assert snap["gauges"]["repro_relay_links_active"] == 0
        assert snap["gauges"]["repro_relay_tenant_links{tenant=acme}"] == 0
    finally:
        _obs.set_registry(previous)
