"""MemoryRelayHub harness, egress policies, and the config file loader."""

import json

import pytest

from repro.core.errors import SessionError
from repro.kex.keyring import normalize_tenant_id
from repro.relay import (
    LinkShed,
    ManualClock,
    MemoryRelayHub,
    PayloadDropped,
    RelayConfig,
    load_tenant_config,
)


def hub_with(**overrides):
    defaults = dict(max_links=16, max_links_per_tenant=16)
    defaults.update(overrides)
    return MemoryRelayHub(config=RelayConfig(**defaults))


# -- harness basics --------------------------------------------------------


def test_manual_clock_steps():
    clock = ManualClock(start=10.0)
    assert clock() == 10.0
    assert clock.advance(2.5) == 12.5
    assert clock() == 12.5


def test_resume_tickets_skip_the_ladder():
    hub = hub_with()
    ticket = hub.mint_ticket("t")
    client = hub.connect("t", channel=b"room", ticket=ticket)
    assert client.open
    assert client.proto.kex_mode == "resume"


def test_mint_ticket_validates_master_length():
    hub = hub_with()
    with pytest.raises(SessionError, match="32 bytes"):
        hub.mint_ticket("t", master=b"short")


def test_tenant_secret_is_cached_across_revocation():
    hub = hub_with()
    secret = hub.tenant_secret("t")
    hub.keyring.revoke("t")
    assert hub.tenant_secret("t") == secret  # the client's stale copy


def test_event_ledger_accumulates_in_order():
    hub = hub_with()
    a = hub.connect("t", channel=b"room")
    before = len(hub.events)
    a.send(b"x")
    assert len(hub.events) > before


# -- egress policies -------------------------------------------------------


def test_drop_oldest_keeps_the_newest_payloads():
    hub = hub_with(egress_queue_payloads=4)
    writer = hub.connect("t", channel=b"room")
    reader = hub.connect("t", channel=b"room")
    dropped = []
    for i in range(10):
        events = writer.send(b"payload-%d" % i)
        dropped.extend(e for e in events if isinstance(e, PayloadDropped))
    assert len(dropped) == 6
    assert all(e.link_id == reader.link_id for e in dropped)
    reader.pump()
    assert reader.received == [b"payload-%d" % i for i in range(6, 10)]
    assert reader.open  # drop-oldest never kills the link
    assert hub.shed_by_reason() == {"egress-drop": 6}


def test_disconnect_policy_sheds_the_stalled_reader():
    hub = hub_with(egress_queue_payloads=4, egress_policy="disconnect")
    writer = hub.connect("t", channel=b"room")
    reader = hub.connect("t", channel=b"room")
    sheds = []
    for i in range(6):
        events = writer.send(b"payload-%d" % i)
        sheds.extend(e for e in events if isinstance(e, LinkShed))
    assert [e.reason for e in sheds] == ["egress-disconnect"]
    assert sheds[0].link_id == reader.link_id
    assert not hub.core.has_link(reader.link_id)
    assert writer.open
    assert hub.shed_by_reason() == {"egress-disconnect": 1}


def test_drops_never_burn_sequence_numbers():
    """The egress queue holds plaintext: after heavy dropping, the
    surviving payloads still decrypt cleanly in order (no seq gaps)."""
    hub = hub_with(egress_queue_payloads=2)
    writer = hub.connect("t", channel=b"room")
    reader = hub.connect("t", channel=b"room")
    for i in range(50):
        writer.send(b"wave-%d" % i)
    reader.pump()
    assert reader.received == [b"wave-48", b"wave-49"]
    assert reader.error is None
    # And the link keeps working at normal pace afterwards.
    reader.received.clear()
    writer.send(b"calm")
    reader.pump()
    assert reader.received == [b"calm"]


# -- the operator config file ---------------------------------------------


def test_load_tenant_config(tmp_path):
    path = tmp_path / "tenants.json"
    path.write_text(json.dumps({
        "fleet_root_hex": "22" * 32,
        "max_links": 100,
        "max_links_per_tenant": 10,
        "handshake_rate": 50.0,
        "egress_policy": "disconnect",
        "tenants": {
            "acme": {},
            "globex": {"revoked": True},
            "initech": {"expires_unix": 4102444800.0},
        },
    }))
    keyring, config = load_tenant_config(path)
    assert config.max_links == 100
    assert config.max_links_per_tenant == 10
    assert config.handshake_rate == 50.0
    assert config.egress_policy == "disconnect"
    # Naming tenants creates the allow list...
    assert config.normalized_allow_list() == frozenset({
        normalize_tenant_id("acme"),
        normalize_tenant_id("globex"),
        normalize_tenant_id("initech"),
    })
    # ...and per-tenant state reaches the keyring.
    assert keyring.is_active("acme")
    assert not keyring.is_active("globex")
    assert keyring.is_active("initech")  # expires in 2100


def test_load_tenant_config_without_tenants_allows_all(tmp_path):
    path = tmp_path / "open.json"
    path.write_text(json.dumps({"fleet_root_hex": "33" * 32}))
    keyring, config = load_tenant_config(path)
    assert config.normalized_allow_list() is None
    assert keyring.is_active("anyone")


def test_load_tenant_config_rejects_bad_documents(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"max_links": 5}))
    with pytest.raises(SessionError, match="fleet_root_hex"):
        load_tenant_config(path)
    path.write_text(json.dumps({"fleet_root_hex": "not hex"}))
    with pytest.raises(SessionError, match="hex"):
        load_tenant_config(path)


def test_loaded_config_drives_a_hub(tmp_path):
    path = tmp_path / "tenants.json"
    path.write_text(json.dumps({
        "fleet_root_hex": "44" * 32,
        "tenants": {"acme": {}, "globex": {"revoked": True}},
    }))
    keyring, config = load_tenant_config(path)
    hub = MemoryRelayHub(keyring, config)
    good = hub.connect("acme", channel=b"room")
    assert good.open
    # A globex client (whatever secret it once held) dies at the
    # keyring's revocation check, before any MAC is even examined.
    bad = hub.connect("globex", auth_secret=b"\x00" * 32)
    assert not bad.open
    assert hub.shed_by_reason() == {"tenant-revoked": 1}
