"""Tests for the command-line interface."""

import asyncio
import threading

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestVersionAndEngines:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_engines_subcommand_lists_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("reference")
        assert "library default" in lines[0]
        assert lines[1].startswith("fast")
        assert "CLI default" in lines[1]

    def test_engines_subcommand_sees_plugins(self, capsys):
        from repro.core import engines

        class Plugin(engines.FastEngine):
            name = "plugin"

        engines.register_engine("plugin", Plugin)
        try:
            assert main(["engines"]) == 0
            assert "plugin" in capsys.readouterr().out
        finally:
            engines._FACTORIES.pop("plugin", None)
            engines._INSTANCES.pop("plugin", None)


class TestErrorExits:
    """Invalid arguments exit 2 with a one-line message, no traceback."""

    def test_bad_key_hex(self, tmp_path, capsys):
        plain = tmp_path / "p"
        plain.write_bytes(b"x")
        rc = main(["encrypt", "--key", "zz:zz", str(plain),
                   str(tmp_path / "out")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_input_file(self, tmp_path, capsys):
        rc = main(["encrypt", "--key", "03:25",
                   str(tmp_path / "nonexistent"), str(tmp_path / "out")])
        assert rc == 2
        assert "repro-mhhea: error:" in capsys.readouterr().err

    def test_unknown_engine_flag_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["encrypt", "--key", "03:25", "--engine", "turbo",
                  str(tmp_path / "p"), str(tmp_path / "out")])
        assert excinfo.value.code == 2
        # argparse names the registered engines in its one-line error
        assert "reference" in capsys.readouterr().err

    def test_corrupt_packet_exits_2(self, tmp_path, capsys):
        blob = tmp_path / "blob"
        blob.write_bytes(b"not a packet at all")
        rc = main(["decrypt", "--key", "03:25", str(blob),
                   str(tmp_path / "out")])
        assert rc == 2
        assert "repro-mhhea: error:" in capsys.readouterr().err


class TestKeygen:
    def test_prints_hex_key(self, capsys):
        assert main(["keygen", "--seed", "5"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out.split(":")) == 16

    def test_pairs_option(self, capsys):
        main(["keygen", "--seed", "5", "--pairs", "4"])
        out = capsys.readouterr().out.strip()
        assert len(out.split(":")) == 4


class TestEncryptDecrypt:
    def test_file_roundtrip(self, tmp_path, capsys):
        key = "03:25:71:46"
        plain = tmp_path / "plain.bin"
        packet = tmp_path / "packet.bin"
        out = tmp_path / "out.bin"
        plain.write_bytes(b"file round trip payload")
        assert main(["encrypt", "--key", key, str(plain), str(packet)]) == 0
        assert main(["decrypt", "--key", key, str(packet), str(out)]) == 0
        assert out.read_bytes() == b"file round trip payload"

    def test_nonce_option(self, tmp_path):
        key = "03:25"
        plain = tmp_path / "p"
        plain.write_bytes(b"xyz")
        a, b = tmp_path / "a", tmp_path / "b"
        main(["encrypt", "--key", key, "--nonce", "0x1111", str(plain), str(a)])
        main(["encrypt", "--key", key, "--nonce", "0x2222", str(plain), str(b)])
        assert a.read_bytes() != b.read_bytes()

    def test_sharded_roundtrip_with_workers(self, tmp_path, capsys):
        key = "03:25:71:46"
        plain = tmp_path / "plain.bin"
        blob = tmp_path / "blob.bin"
        out = tmp_path / "out.bin"
        plain.write_bytes(bytes(i % 251 for i in range(10_000)))
        assert main(["encrypt", "--key", key, "--workers", "2",
                     "--chunk-size", "4096", str(plain), str(blob)]) == 0
        # Decrypt the sharded blob inline: format is worker-agnostic.
        assert main(["decrypt", "--key", key, str(blob), str(out)]) == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_worker_count_never_changes_wire_bytes(self, tmp_path):
        key = "03:25:71:46"
        plain = tmp_path / "plain.bin"
        plain.write_bytes(bytes(range(256)) * 40)
        outputs = []
        for workers in ("0", "1", "2"):
            path = tmp_path / f"w{workers}"
            main(["encrypt", "--key", key, "--workers", workers,
                  "--chunk-size", "1024", str(plain), str(path)])
            outputs.append(path.read_bytes())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_small_file_stays_single_packet(self, tmp_path):
        """Files up to one chunk keep the pre-sharding wire format."""
        from repro.core.key import Key
        from repro.core.stream import encrypt_packet

        key_hex = "03:25:71:46"
        plain = tmp_path / "plain.bin"
        plain.write_bytes(b"small enough for one chunk")
        out = tmp_path / "out"
        main(["encrypt", "--key", key_hex, str(plain), str(out)])
        assert out.read_bytes() == encrypt_packet(
            plain.read_bytes(), Key.from_hex(key_hex), nonce=0xACE1,
            engine="fast")


class TestStego:
    def test_embed_extract_roundtrip(self, tmp_path, capsys):
        from repro.util.rng import random_bytes

        key = "14:72:36:05"
        message = tmp_path / "msg"
        cover = tmp_path / "cover"
        stego = tmp_path / "stego"
        recovered = tmp_path / "rec"
        message.write_bytes(b"hidden words")
        cover.write_bytes(random_bytes(3, 4096))
        assert main(["embed", "--key", key, str(message), str(cover),
                     str(stego)]) == 0
        note = capsys.readouterr().out
        bits = note.split("--bits ")[1].split()[0]
        vectors = note.split("--vectors ")[1].split()[0]
        assert main(["extract", "--key", key, "--bits", bits,
                     "--vectors", vectors, str(stego), str(recovered)]) == 0
        assert recovered.read_bytes() == b"hidden words"


class TestWave:
    def test_prints_waveform(self, capsys):
        assert main(["wave"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out
        assert "LMSG" in out


class TestSecureLink:
    def test_send_echoes_through_a_live_server(self, tmp_path, capsys):
        from repro.core.key import Key
        from repro.net import SecureLinkServer

        key_hex = "03:25:71:46"
        loop = asyncio.new_event_loop()
        server = SecureLinkServer(Key.from_hex(key_hex), port=0)
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            payload = tmp_path / "payload.bin"
            payload.write_bytes(b"cli secure link payload " * 64)
            rc = main(["send", "--key", key_hex, "--port", str(server.port),
                       "--chunk", "128", str(payload)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "byte-exact" in out
            assert "Mbps" in out
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(server.close())
            loop.close()

    def test_send_over_udp_transport(self, tmp_path, capsys):
        from repro.core.key import Key
        from repro.link import UdpLinkServer

        key_hex = "03:25:71:46"
        with UdpLinkServer(Key.from_hex(key_hex), port=0) as server:
            payload = tmp_path / "payload.bin"
            payload.write_bytes(b"datagram payload " * 32)
            rc = main(["send", "--key", key_hex, "--transport", "udp",
                       "--port", str(server.port), "--chunk", "200",
                       str(payload)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "byte-exact" in out
            assert "datagrams" in out

    def test_udp_transport_rejects_workers(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        rc = main(["send", "--key", "03:25:71:46", "--transport", "udp",
                   "--workers", "2", "--port", "1", str(payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert len(err.strip().splitlines()) == 1
        assert "inline" in err

    def test_serve_rejects_udp_with_workers(self, capsys):
        rc = main(["serve", "--key", "03:25:71:46", "--transport", "udp",
                   "--workers", "2"])
        assert rc == 2
        assert "repro-mhhea: error:" in capsys.readouterr().err

    def test_unknown_transport_exits_2(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        with pytest.raises(SystemExit) as excinfo:
            main(["send", "--key", "03:25:71:46", "--transport", "quic",
                  "--port", "1", str(payload)])
        assert excinfo.value.code == 2  # argparse names the choices

    def test_send_with_workers_echoes_byte_exact(self, tmp_path, capsys):
        from repro.core.key import Key
        from repro.net import SecureLinkServer

        key_hex = "03:25:71:46"
        loop = asyncio.new_event_loop()
        server = SecureLinkServer(Key.from_hex(key_hex), port=0)
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            payload = tmp_path / "payload.bin"
            payload.write_bytes(bytes(i % 256 for i in range(8192)))
            rc = main(["send", "--key", key_hex, "--port", str(server.port),
                       "--chunk", "2048", "--workers", "1",
                       "--parallel-threshold", "1024", str(payload)])
            assert rc == 0
            assert "byte-exact" in capsys.readouterr().out
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(server.close())
            loop.close()


class TestObservabilityCli:
    """--metrics-port on serve/send, the stats subcommand, obs summaries."""

    def test_metrics_port_rejected_on_udp_serve(self, capsys):
        rc = main(["serve", "--key", "03:25:71:46", "--transport", "udp",
                   "--metrics-port", "0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert len(err.strip().splitlines()) == 1
        assert "--transport tcp" in err

    def test_metrics_port_rejected_on_udp_send(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        rc = main(["send", "--key", "03:25:71:46", "--transport", "udp",
                   "--port", "1", "--metrics-port", "0", str(payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--transport tcp" in err

    def test_send_with_metrics_port_prints_obs_summary(self, tmp_path,
                                                       capsys):
        from repro.core.key import Key
        from repro.net import SecureLinkServer
        from repro.obs import core as obs

        key_hex = "03:25:71:46"
        loop = asyncio.new_event_loop()
        server = SecureLinkServer(Key.from_hex(key_hex), port=0)
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            payload = tmp_path / "payload.bin"
            payload.write_bytes(b"observed payload " * 32)
            assert not obs.is_enabled()
            rc = main(["send", "--key", key_hex, "--port", str(server.port),
                       "--chunk", "128", "--metrics-port", "0",
                       str(payload)])
            assert rc == 0
            # The embedded call restored the disabled default afterwards.
            assert not obs.is_enabled()
            out = capsys.readouterr().out
            assert "metrics on http://127.0.0.1:" in out
            assert "byte-exact" in out
            assert "obs:" in out
            assert "repro_client_connects_total" in out
            assert "repro_session_packets_total{direction=tx}" in out
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(server.close())
            loop.close()

    def test_stats_fetches_metrics_text_and_json(self, capsys):
        from repro.obs import core as obs
        from repro.obs.http import MetricsEndpoint

        registry = obs.ObsRegistry()
        registry.counter("repro_demo_total", op="x").inc(5)
        loop = asyncio.new_event_loop()
        endpoint = MetricsEndpoint(port=0, registry=registry)
        loop.run_until_complete(endpoint.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            rc = main(["stats", "--port", str(endpoint.port)])
            assert rc == 0
            out = capsys.readouterr().out
            assert 'repro_demo_total{op="x"} 5' in out

            rc = main(["stats", "--port", str(endpoint.port), "--json"])
            assert rc == 0
            import json

            snap = json.loads(capsys.readouterr().out)
            assert snap["counters"] == {"repro_demo_total{op=x}": 5}
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(endpoint.close())
            loop.close()

    def test_stats_against_dead_port_exits_2(self, capsys):
        import socket

        # Grab a port that is certainly closed by the time stats runs.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        rc = main(["stats", "--port", str(dead_port)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert len(err.strip().splitlines()) == 1

    def test_parser_knows_the_new_surface(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--key", "x", "--metrics-port",
                                  "9109"])
        assert args.metrics_port == 9109
        args = parser.parse_args(["stats", "--port", "9109", "--json"])
        assert args.command == "stats"
        assert args.json is True
        args = parser.parse_args(["serve", "--key", "x"])
        assert args.metrics_port is None


class TestScenario:
    def test_list_names_the_committed_battery(self, capsys):
        assert main(["scenario", "--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "clean-duplex" in names
        assert "hostile-mix" in names
        assert len(names) == len(set(names))

    def test_single_scenario_runs_and_reconciles(self, capsys):
        assert main(["scenario", "--only", "clean-duplex"]) == 0
        out = capsys.readouterr().out
        assert "clean-duplex" in out
        assert "ok" in out
        assert "FAIL" not in out

    def test_json_output_is_parseable(self, capsys):
        import json

        assert main(["scenario", "--only", "lossy", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        (entry,) = document["scenarios"]
        assert entry["name"] == "lossy"
        assert entry["ok"] is True
        assert entry["directions"]["i2r"]["sent"] == 120

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "--only", "frobnicate"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert "--list" in err


class TestKexCli:
    KEY_HEX = "03:25:71:46"

    def _kex_server(self):
        """A live kex-enabled TCP server on a background loop."""
        from repro.api import Codec, _resolve_kex
        from repro.core.key import Key
        from repro.net import SecureLinkServer

        codec = Codec(Key.from_hex(self.KEY_HEX))
        server = SecureLinkServer(codec.key, port=0,
                                  kex=_resolve_kex(codec, "serve", "ecdh"))
        loop = asyncio.new_event_loop()
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        return server, loop, thread

    def test_send_negotiates_ecdh_then_resumes_from_ticket_file(
            self, tmp_path, capsys):
        server, loop, thread = self._kex_server()
        try:
            payload = tmp_path / "payload.bin"
            payload.write_bytes(b"kex cli payload " * 32)
            ticket_file = tmp_path / "session.ticket"
            base = ["send", "--key", self.KEY_HEX,
                    "--port", str(server.port), "--kex", "ecdh",
                    "--ticket-file", str(ticket_file), str(payload)]
            assert main(list(base)) == 0
            first = capsys.readouterr().out
            assert "kex mode: ecdh" in first
            assert f"saved resumption ticket to {ticket_file}" in first
            assert ticket_file.exists()
            assert main(list(base)) == 0
            second = capsys.readouterr().out
            assert "kex mode: resume" in second
            assert "byte-exact" in second
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(server.close())
            loop.close()

    def test_send_rejects_kex_over_udp(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        rc = main(["send", "--key", self.KEY_HEX, "--transport", "udp",
                   "--kex", "ecdh", "--port", "1", str(payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert len(err.strip().splitlines()) == 1
        assert "udp" in err

    def test_serve_rejects_kex_over_udp(self, capsys):
        rc = main(["serve", "--key", self.KEY_HEX, "--transport", "udp",
                   "--kex", "ecdh"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert "--transport tcp" in err

    def test_ticket_file_requires_kex(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        rc = main(["send", "--key", self.KEY_HEX, "--port", "1",
                   "--ticket-file", str(tmp_path / "t"), str(payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-mhhea: error:")
        assert "--kex ecdh" in err

    def test_scenario_json_carries_the_kex_attack_battery(self, capsys):
        import json

        # The battery rides the full default run (--only skips it).
        assert main(["scenario", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        battery = document["kex_attacks"]
        assert battery["ok"], battery["problems"]
        assert len(battery["checks"]) >= 10
        names = [entry["name"] for entry in document["scenarios"]]
        assert "attacker-forge" in names
