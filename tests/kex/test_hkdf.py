"""RFC 5869 appendix A test vectors for HKDF-SHA256."""

import pytest

from repro.kex.hkdf import HASH_SIZE, hkdf, hkdf_expand, hkdf_extract

# RFC 5869 A.1 — basic test case with SHA-256.
A1_IKM = bytes.fromhex("0b" * 22)
A1_SALT = bytes.fromhex("000102030405060708090a0b0c")
A1_INFO = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
A1_PRK = bytes.fromhex(
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
A1_OKM = bytes.fromhex(
    "3cb25f25faacd57a90434f64d0362f2a"
    "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
    "34007208d5b887185865")

# RFC 5869 A.2 — longer inputs/outputs.
A2_IKM = bytes(range(0x00, 0x50))
A2_SALT = bytes(range(0x60, 0xB0))
A2_INFO = bytes(range(0xB0, 0x100))
A2_PRK = bytes.fromhex(
    "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244")
A2_OKM = bytes.fromhex(
    "b11e398dc80327a1c8e7f78c596a4934"
    "4f012eda2d4efad8a050cc4c19afa97c"
    "59045a99cac7827271cb41c65e590e09"
    "da3275600c2f09b8367793a9aca3db71"
    "cc30c58179ec3e87c14c01d5c1f3434f"
    "1d87")

# RFC 5869 A.3 — zero-length salt and info.
A3_IKM = bytes.fromhex("0b" * 22)
A3_PRK = bytes.fromhex(
    "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04")
A3_OKM = bytes.fromhex(
    "8da4e775a563c18f715f802a063c5a31"
    "b8a11f5c5ee1879ec3454e5f3c738d2d"
    "9d201395faa4b61a96c8")


@pytest.mark.parametrize("salt,ikm,info,prk,okm", [
    (A1_SALT, A1_IKM, A1_INFO, A1_PRK, A1_OKM),
    (A2_SALT, A2_IKM, A2_INFO, A2_PRK, A2_OKM),
    (b"", A3_IKM, b"", A3_PRK, A3_OKM),
], ids=["A.1", "A.2", "A.3"])
def test_rfc5869_vectors(salt, ikm, info, prk, okm):
    assert hkdf_extract(salt, ikm) == prk
    assert hkdf_expand(prk, info, len(okm)) == okm
    assert hkdf(salt, ikm, info, len(okm)) == okm


def test_expand_is_a_prefix_family():
    prk = hkdf_extract(b"salt", b"ikm")
    long = hkdf_expand(prk, b"label", 64)
    assert hkdf_expand(prk, b"label", 16) == long[:16]


def test_distinct_labels_are_unrelated():
    prk = hkdf_extract(b"salt", b"ikm")
    assert hkdf_expand(prk, b"a", 32) != hkdf_expand(prk, b"b", 32)


@pytest.mark.parametrize("length", [0, -1, 255 * HASH_SIZE + 1])
def test_expand_length_bounds(length):
    with pytest.raises(ValueError):
        hkdf_expand(bytes(HASH_SIZE), b"info", length)
