"""Hello-v2 wire round-trips, the full state machine, and its refusals."""

import dataclasses

import pytest

from repro.core.errors import CipherFormatError, KexError
from repro.kex.handshake import (
    Handshake,
    KexConfig,
    ResumptionTicket,
    kex_auth_secret,
)
from repro.kex.keyring import TENANT_ID_SIZE, TenantKeyring, normalize_tenant_id
from repro.kex.hkdf import hkdf_expand
from repro.kex.tickets import TicketVault
from repro.kex import wire
from repro.core.key import Key

AUTH = bytes(range(32))


def client_config(**kwargs):
    kwargs.setdefault("auth_secret", AUTH)
    kwargs.setdefault("modes", ("ecdh", "resume"))
    return KexConfig(**kwargs)


def server_config(**kwargs):
    kwargs.setdefault("auth_secret", AUTH)
    kwargs.setdefault("modes", ("ecdh", "resume", "psk"))
    kwargs.setdefault("tickets", TicketVault(b"vault secret"))
    return KexConfig(**kwargs)


def run_handshake(client_cfg, server_cfg):
    client = Handshake(client_cfg, "initiator")
    server = Handshake(server_cfg, "responder")
    reply = server.absorb(client.first_message())
    finished = client.absorb(reply)
    assert server.absorb(finished) is None
    assert client.done and server.done
    return client, server


def retamper(blob, mutate):
    """Unpack, mutate, and repack a kex frame with a *valid* CRC — the
    framing CRC is unkeyed, so an on-path attacker can always fix it up."""
    record = wire.unpack_record(blob)
    msg_type, mode, body = mutate(record)
    return wire.pack_record(msg_type, mode, body)


# -- wire format ----------------------------------------------------------

def test_record_roundtrip():
    blob = wire.pack_record(wire.MSG_CLIENT_HELLO, wire.OFFER_ECDH, b"body")
    record = wire.unpack_record(blob)
    assert record.msg_type == wire.MSG_CLIENT_HELLO
    assert record.mode == wire.OFFER_ECDH
    assert record.body == b"body"
    assert record.raw == blob
    assert record.transcript_bytes == blob[:-2]


@pytest.mark.parametrize("mangle", [
    lambda b: b[:-1],                               # truncated
    lambda b: b"XKX2" + b[4:],                      # wrong magic
    lambda b: b[:4] + b"\x7f" + b[5:],              # unknown version
    lambda b: b[:7] + b"\x01" + b[8:],              # reserved flags set
    lambda b: b[:-2] + bytes(2),                    # CRC mismatch
    lambda b: b + b"x",                             # trailing garbage
], ids=["truncated", "magic", "version", "flags", "crc", "overlong"])
def test_unpack_rejects_damage(mangle):
    blob = wire.pack_record(wire.MSG_FINISHED, wire.MODE_ECDH, bytes(32))
    with pytest.raises(CipherFormatError):
        wire.unpack_record(mangle(blob))


def test_unknown_message_type_rejected():
    blob = wire.pack_record(9, wire.MODE_ECDH, b"")
    with pytest.raises(CipherFormatError):
        wire.unpack_record(blob)


def test_oversized_body_rejected_before_buffering():
    with pytest.raises(KexError):
        wire.pack_record(wire.MSG_CLIENT_HELLO, 0,
                         bytes(wire.KEX_MAX_BODY + 1))
    prefix = bytearray(
        wire.pack_record(wire.MSG_CLIENT_HELLO, 0, b"")[:wire.KEX_PREFIX_SIZE])
    prefix[8:10] = (wire.KEX_MAX_BODY + 1).to_bytes(2, "little")
    with pytest.raises(CipherFormatError):
        wire.kex_frame_size(bytes(prefix))


def test_kex_frame_size_partial_prefix():
    blob = wire.pack_record(wire.MSG_FINISHED, wire.MODE_ECDH, bytes(32))
    assert wire.kex_frame_size(blob[:wire.KEX_PREFIX_SIZE - 1]) is None
    assert wire.kex_frame_size(blob) == len(blob)


def test_client_hello_roundtrip():
    hello = wire.ClientHello(
        offers=wire.OFFER_ECDH | wire.OFFER_RESUME, width=16, n_pairs=8,
        public=bytes(range(32)), random=bytes(range(16)),
        tenant_id=b"tenant-a".ljust(16, b"\x00"), ticket=b"opaque ticket")
    again = wire.ClientHello.unpack(wire.unpack_record(hello.pack()))
    assert again == hello


def test_server_hello_roundtrip_and_confirm_fill():
    hello = wire.ServerHello(mode=wire.MODE_ECDH, public=bytes(32),
                             random=bytes(16), ticket=b"t" * 48,
                             confirm=bytes(32))
    filled = hello.with_confirm(b"\xab" * 32)
    again = wire.ServerHello.unpack(wire.unpack_record(filled.pack()))
    assert again == filled
    assert again.confirm == b"\xab" * 32


def test_unpack_helpers_enforce_message_type():
    finished = wire.unpack_record(wire.Finished(wire.MODE_ECDH,
                                                bytes(32)).pack())
    with pytest.raises(KexError):
        wire.ClientHello.unpack(finished)
    with pytest.raises(KexError):
        wire.ServerHello.unpack(finished)


# -- the state machine ----------------------------------------------------

def test_full_ecdh_handshake_agrees_on_keys():
    client, server = run_handshake(client_config(), server_config())
    assert client.mode == server.mode == "ecdh"
    assert client.root_key.to_bytes() == server.root_key.to_bytes()
    assert client.issued_ticket is not None
    assert client.issued_ticket.ticket == server.issued_ticket.ticket


def test_resumption_skips_public_key_work_and_rekeys():
    vault = TicketVault(b"vault secret")
    first, _ = run_handshake(client_config(),
                             server_config(tickets=vault))
    ticket = first.issued_ticket
    resumed, server = run_handshake(client_config(ticket=ticket),
                                    server_config(tickets=vault))
    assert resumed.mode == server.mode == "resume"
    # Fresh randoms on both sides: the resumed session's root is new.
    assert resumed.root_key.to_bytes() != first.root_key.to_bytes()
    # And a fresh ticket was minted for the *next* resumption.
    assert resumed.issued_ticket is not None
    assert resumed.issued_ticket.ticket != ticket.ticket


def test_stale_ticket_falls_back_to_ecdh():
    vault = TicketVault(b"vault secret")
    first, _ = run_handshake(client_config(), server_config(tickets=vault))
    other_vault = TicketVault(b"a different vault")
    client, server = run_handshake(
        client_config(ticket=first.issued_ticket),
        server_config(tickets=other_vault))
    assert client.mode == server.mode == "ecdh"


def test_wrong_auth_secret_aborts():
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(auth_secret=bytes(32)), "responder")
    reply = server.absorb(client.first_message())
    with pytest.raises(KexError, match="MAC"):
        client.absorb(reply)
    assert client.failed and not client.done


def test_tampered_offer_bitmask_aborts():
    """Rewriting the offer bits (the classic downgrade move) changes the
    transcript on one side only: the confirm MAC catches it even though
    the attacker fixed the CRC up."""
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(), "responder")
    hello = client.first_message()
    tampered = retamper(hello, lambda r: (r.msg_type,
                                          r.mode | wire.OFFER_RESUME,
                                          r.body))
    reply = server.absorb(tampered)
    with pytest.raises(KexError, match="MAC"):
        client.absorb(reply)
    assert client.failed


def test_tampered_server_confirm_aborts():
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(), "responder")
    reply = server.absorb(client.first_message())
    tampered = retamper(reply, lambda r: (
        r.msg_type, r.mode, r.body[:-1] + bytes([r.body[-1] ^ 1])))
    with pytest.raises(KexError, match="MAC"):
        client.absorb(tampered)


def test_tampered_finished_aborts_responder():
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(), "responder")
    finished = client.absorb(server.absorb(client.first_message()))
    tampered = retamper(finished, lambda r: (
        r.msg_type, r.mode, bytes([r.body[0] ^ 1]) + r.body[1:]))
    with pytest.raises(KexError, match="MAC"):
        server.absorb(tampered)
    assert server.failed and not server.done


def test_low_order_client_public_rejected():
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(), "responder")
    hello = client.first_message()
    # Zero the client public key (body: width u8 | n_pairs u8 | public 32).
    zeroed = retamper(hello, lambda r: (
        r.msg_type, r.mode, r.body[:2] + bytes(32) + r.body[34:]))
    with pytest.raises(KexError, match="zero"):
        server.absorb(zeroed)


def test_parameter_mismatch_refused():
    client = Handshake(client_config(n_pairs=4), "initiator")
    server = Handshake(server_config(n_pairs=8), "responder")
    with pytest.raises(KexError, match="key pairs"):
        server.absorb(client.first_message())


def test_failed_handshake_is_poisoned():
    client = Handshake(client_config(), "initiator")
    server = Handshake(server_config(auth_secret=bytes(32)), "responder")
    reply = server.absorb(client.first_message())
    with pytest.raises(KexError):
        client.absorb(reply)
    with pytest.raises(KexError, match="already failed"):
        client.absorb(reply)


def test_responder_refuses_ecdh_when_policy_is_resume_only():
    client = Handshake(client_config(modes=("ecdh",)), "initiator")
    server = Handshake(server_config(modes=("resume",)), "responder")
    with pytest.raises(KexError, match="no common kex mode"):
        server.absorb(client.first_message())


def test_resume_only_client_without_ticket_has_nothing_to_offer():
    client = Handshake(client_config(modes=("resume",)), "initiator")
    with pytest.raises(KexError, match="nothing to offer"):
        client.first_message()


def test_psk_only_config_cannot_build_a_handshake():
    with pytest.raises(KexError):
        Handshake(KexConfig(auth_secret=AUTH, modes=("psk",)), "initiator")


def test_handshake_is_deterministic_under_injected_entropy():
    kwargs = dict(private_key=bytes(range(32)), random_bytes=bytes(16))
    a = Handshake(client_config(), "initiator", **kwargs)
    b = Handshake(client_config(), "initiator", **kwargs)
    assert a.first_message() == b.first_message()


# -- config validation ----------------------------------------------------

@pytest.mark.parametrize("kwargs,needle", [
    (dict(modes=("quantum",)), "unknown kex modes"),
    (dict(modes=()), "must not be empty"),
    (dict(modes=("ecdh", "ecdh")), "duplicate"),
    (dict(auth_secret=None), "auth_secret or a keyring"),
    (dict(n_pairs=0), "n_pairs"),
    (dict(tenant_id=b"x" * 17), "tenant"),
])
def test_config_validation(kwargs, needle):
    config = dataclasses.replace(KexConfig(auth_secret=AUTH), **kwargs)
    with pytest.raises(KexError, match=needle):
        config.validate()


def test_keyring_overrides_flat_auth_secret():
    keyring = TenantKeyring(b"fleet root secret")
    config = KexConfig(keyring=keyring)
    config.validate()
    tenant = normalize_tenant_id("acme")
    assert config.resolve_auth_secret(tenant) == keyring.tenant_secret(tenant)


# -- ticket serialisation -------------------------------------------------

def test_resumption_ticket_roundtrip():
    ticket = ResumptionTicket(ticket=b"sealed" * 10,
                              master_secret=bytes(range(32)),
                              tenant_id=normalize_tenant_id("acme"))
    assert ResumptionTicket.from_bytes(ticket.to_bytes()) == ticket


@pytest.mark.parametrize("mangle", [
    lambda b: b[:-1],            # truncated ticket payload
    lambda b: b"NOPE" + b[4:],   # wrong magic
    lambda b: b[:10],            # shorter than the fixed header
], ids=["truncated", "magic", "short"])
def test_resumption_ticket_rejects_damage(mangle):
    blob = ResumptionTicket(b"sealed", bytes(32),
                            normalize_tenant_id("t")).to_bytes()
    with pytest.raises(KexError):
        ResumptionTicket.from_bytes(mangle(blob))


# -- derived authentication ----------------------------------------------

def test_kex_auth_secret_is_deterministic_and_key_bound():
    a = Key.generate(seed=1, n_pairs=4)
    assert kex_auth_secret(a) == kex_auth_secret(Key.generate(seed=1,
                                                              n_pairs=4))
    assert kex_auth_secret(a) != kex_auth_secret(Key.generate(seed=2,
                                                              n_pairs=4))
    assert len(kex_auth_secret(a)) == 32


# -- tenant keyring -------------------------------------------------------

def test_tenant_ids_normalise_and_bound():
    assert normalize_tenant_id("acme") == b"acme" + bytes(12)
    assert normalize_tenant_id(b"") == bytes(TENANT_ID_SIZE)
    with pytest.raises(KexError):
        normalize_tenant_id("x" * (TENANT_ID_SIZE + 1))


def test_keyring_separates_tenants():
    keyring = TenantKeyring(b"fleet root secret")
    assert keyring.tenant_secret("acme") != keyring.tenant_secret("bmce")
    a = keyring.tenant_key("acme", n_pairs=4)
    b = keyring.tenant_key("bmce", n_pairs=4)
    assert a.to_bytes() != b.to_bytes()
    assert keyring.tenant_key("acme", n_pairs=4).to_bytes() == a.to_bytes()


def test_keyring_ticket_secret_differs_from_tenant_secrets():
    keyring = TenantKeyring(b"fleet root secret")
    assert keyring.ticket_secret() != keyring.tenant_secret("acme")
    assert keyring.ticket_secret() == hkdf_expand(
        b"fleet root secret", b"mhhea-kex ticket vault", 32)


def test_keyring_rejects_weak_roots():
    with pytest.raises(KexError):
        TenantKeyring(b"short")
