"""TenantKeyring: derivation isolation, revocation, expiry.

The keyring is the fleet's revocation authority — these tests pin the
contract the relay's admission path depends on: a revoked or expired
tenant branch refuses *every* derivation with the typed
:class:`~repro.core.errors.TenantRevokedError`, on an injectable clock,
while sibling tenants are untouched.
"""

import pytest

from repro.core.errors import KexError, TenantRevokedError
from repro.kex.handshake import Handshake, KexConfig
from repro.kex.keyring import TENANT_ID_SIZE, TenantKeyring, normalize_tenant_id

ROOT = b"fleet-root-for-keyring-tests!!!!"


class ManualClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now


# -- normalization ---------------------------------------------------------


def test_normalize_pads_and_encodes():
    assert normalize_tenant_id("acme") == b"acme" + b"\x00" * 12
    assert normalize_tenant_id(b"acme") == normalize_tenant_id("acme")
    assert len(normalize_tenant_id("x" * TENANT_ID_SIZE)) == TENANT_ID_SIZE


def test_normalize_rejects_oversized_ids():
    with pytest.raises(KexError, match="17 bytes"):
        normalize_tenant_id(b"x" * 17)


# -- derivation ------------------------------------------------------------


def test_tenants_get_distinct_secrets_and_keys():
    keyring = TenantKeyring(ROOT)
    assert keyring.tenant_secret("a") != keyring.tenant_secret("b")
    assert keyring.tenant_key("a").pairs != keyring.tenant_key("b").pairs
    # Deterministic: the same branch always re-derives identically.
    assert keyring.tenant_secret("a") == keyring.tenant_secret("a")


def test_short_fleet_root_rejected():
    with pytest.raises(KexError, match="at least 16 bytes"):
        TenantKeyring(b"too short")


# -- revocation ------------------------------------------------------------


def test_revoked_tenant_refuses_every_derivation():
    keyring = TenantKeyring(ROOT)
    before = keyring.tenant_secret("doomed")
    keyring.revoke("doomed")
    assert not keyring.is_active("doomed")
    with pytest.raises(TenantRevokedError, match="revoked") as exc_info:
        keyring.tenant_secret("doomed")
    assert exc_info.value.tenant_id == normalize_tenant_id("doomed")
    with pytest.raises(TenantRevokedError):
        keyring.tenant_key("doomed")
    # Sibling branches are untouched, as is the fleet ticket secret.
    assert keyring.tenant_secret("alive") != before
    assert keyring.is_active("alive")
    assert len(keyring.ticket_secret()) == 32


def test_expiry_bites_on_the_injected_clock():
    clock = ManualClock(start=100.0)
    keyring = TenantKeyring(ROOT, clock=clock)
    keyring.set_expiry("trial", 200.0)
    assert keyring.is_active("trial")
    secret = keyring.tenant_secret("trial")
    clock.now = 200.0  # expiry is inclusive: now >= expires_at refuses
    assert not keyring.is_active("trial")
    with pytest.raises(TenantRevokedError, match="expired"):
        keyring.tenant_secret("trial")
    # is_active also answers for an explicit instant, clock untouched.
    assert keyring.is_active("trial", now=199.9)
    assert secret == TenantKeyring(ROOT).tenant_secret("trial")


def test_unknown_tenant_is_active_and_derives():
    """No allow list at the keyring layer: unknown ids derive fine
    (admission policy, not key derivation, decides who may connect)."""
    keyring = TenantKeyring(ROOT)
    assert keyring.is_active(b"\x01\x02\x03")
    assert len(keyring.tenant_secret(b"\x01\x02\x03")) == 32


# -- the handshake integration --------------------------------------------


def test_revocation_aborts_an_inflight_handshake():
    """The responder resolves its auth secret through the keyring per
    ClientHello, so a revoked tenant dies mid-handshake with the typed
    error — not a generic MAC failure."""
    keyring = TenantKeyring(ROOT)
    secret = keyring.tenant_secret("acme")  # client learned it earlier
    keyring.revoke("acme")
    client = Handshake(KexConfig(auth_secret=secret, modes=("ecdh",),
                                 tenant_id="acme"), "initiator")
    server = Handshake(KexConfig(modes=("ecdh",), keyring=keyring),
                       "responder")
    with pytest.raises(TenantRevokedError):
        server.absorb(client.first_message())
