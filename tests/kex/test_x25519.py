"""RFC 7748 known-answer tests for the pure-Python X25519 core."""

import pytest

from repro.core.errors import KexError
from repro.kex.x25519 import (
    KEY_SIZE,
    X25519_BASEPOINT,
    clamp_scalar,
    public_key,
    shared_secret,
    x25519,
)

# RFC 7748 section 5.2, first test vector.
RFC_SCALAR_1 = bytes.fromhex(
    "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
RFC_U_1 = bytes.fromhex(
    "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
RFC_OUT_1 = bytes.fromhex(
    "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")

# RFC 7748 section 5.2, second test vector (u with high bit set —
# must be masked on decode).
RFC_SCALAR_2 = bytes.fromhex(
    "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
RFC_U_2 = bytes.fromhex(
    "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
RFC_OUT_2 = bytes.fromhex(
    "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")

# RFC 7748 section 5.2, iterated base-point ladder after one iteration.
RFC_ITER_1 = bytes.fromhex(
    "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")

# RFC 7748 section 6.1, the full Diffie-Hellman example.
ALICE_PRIVATE = bytes.fromhex(
    "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
ALICE_PUBLIC = bytes.fromhex(
    "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
BOB_PRIVATE = bytes.fromhex(
    "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
BOB_PUBLIC = bytes.fromhex(
    "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
SHARED = bytes.fromhex(
    "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")


def test_rfc7748_vector_one():
    assert x25519(RFC_SCALAR_1, RFC_U_1) == RFC_OUT_1


def test_rfc7748_vector_two_masks_the_top_bit():
    assert x25519(RFC_SCALAR_2, RFC_U_2) == RFC_OUT_2


def test_rfc7748_iterated_ladder_one_round():
    assert x25519(X25519_BASEPOINT, X25519_BASEPOINT) == RFC_ITER_1


def test_rfc7748_diffie_hellman_example():
    assert public_key(ALICE_PRIVATE) == ALICE_PUBLIC
    assert public_key(BOB_PRIVATE) == BOB_PUBLIC
    assert shared_secret(ALICE_PRIVATE, BOB_PUBLIC) == SHARED
    assert shared_secret(BOB_PRIVATE, ALICE_PUBLIC) == SHARED


def test_agreement_for_arbitrary_keys():
    a = bytes(range(32))
    b = bytes(range(32, 64))
    assert shared_secret(a, public_key(b)) == shared_secret(b, public_key(a))


def test_clamping_is_idempotent_and_pins_bits():
    clamped = clamp_scalar(bytes([0xFF]) * 32)
    assert clamped % 8 == 0
    assert clamped >> 255 == 0
    assert clamped >> 254 == 1
    assert clamp_scalar(clamped.to_bytes(32, "little")) == clamped


@pytest.mark.parametrize("low_order_u", [
    bytes(32),                      # u = 0
    (1).to_bytes(32, "little"),     # u = 1
    # u = p - 1 (order-2 point): ladder output is all zeros too.
    ((2 ** 255 - 19) - 1).to_bytes(32, "little"),
])
def test_low_order_points_are_rejected(low_order_u):
    with pytest.raises(KexError):
        shared_secret(ALICE_PRIVATE, low_order_u)


def test_wrong_size_inputs_are_rejected():
    with pytest.raises(KexError):
        x25519(b"short", X25519_BASEPOINT)
    with pytest.raises(KexError):
        x25519(RFC_SCALAR_1, b"\x00" * 31)


def test_key_size_constant():
    assert KEY_SIZE == 32
    assert len(X25519_BASEPOINT) == 32
