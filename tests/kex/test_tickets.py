"""TicketVault: sealing, single-use redemption, expiry, and bounds.

Every test injects ``clock`` (and where it matters, ``rng``) so expiry
and replay behaviour are stepped deterministically — no sleeping.
"""

import pytest

from repro.core.errors import KexError
from repro.kex.tickets import TICKET_OVERHEAD, TicketVault

MASTER = bytes(range(32))
TENANT = b"tenant-a".ljust(16, b"\x00")


def make_vault(**kwargs):
    ticks = [1000.0]
    kwargs.setdefault("lifetime_s", 60.0)
    vault = TicketVault(b"vault sealing secret", clock=lambda: ticks[0],
                        **kwargs)
    return vault, ticks


def test_issue_redeem_roundtrip():
    vault, _ = make_vault()
    ticket = vault.issue(MASTER, TENANT)
    assert len(ticket) == TICKET_OVERHEAD + 32 + 16 + 8
    assert vault.redeem(ticket) == (MASTER, TENANT)
    assert vault.counters["issued"] == 1
    assert vault.counters["accepted"] == 1


def test_tickets_are_single_use():
    vault, _ = make_vault()
    ticket = vault.issue(MASTER, TENANT)
    assert vault.redeem(ticket) is not None
    assert vault.redeem(ticket) is None
    assert vault.counters["rejected_replayed"] == 1
    assert vault.pending == 1


def test_expired_tickets_are_refused():
    vault, ticks = make_vault(lifetime_s=60.0)
    ticket = vault.issue(MASTER, TENANT)
    ticks[0] += 59.0
    assert vault.redeem(ticket) is not None
    late = vault.issue(MASTER, TENANT)
    ticks[0] += 61.0
    assert vault.redeem(late) is None
    assert vault.counters["rejected_expired"] == 1


@pytest.mark.parametrize("mangle", [
    lambda t: t[:10],                                   # far too short
    lambda t: t[:20] + bytes([t[20] ^ 0x10]) + t[21:],  # ciphertext flip
    lambda t: t[:-1] + bytes([t[-1] ^ 1]),              # MAC flip
    lambda t: bytes([t[0] ^ 1]) + t[1:],                # nonce flip
], ids=["short", "ciphertext", "mac", "nonce"])
def test_tampered_tickets_are_refused(mangle):
    vault, _ = make_vault()
    ticket = vault.issue(MASTER, TENANT)
    assert vault.redeem(mangle(ticket)) is None
    assert vault.counters["rejected_tampered"] == 1
    # The untouched original still redeems: rejection has no side effects.
    assert vault.redeem(ticket) is not None


def test_foreign_vault_tickets_are_refused():
    vault, _ = make_vault()
    other = TicketVault(b"a different secret", clock=lambda: 1000.0)
    assert other.redeem(vault.issue(MASTER, TENANT)) is None
    assert other.counters["rejected_tampered"] == 1


def test_replay_cache_is_bounded():
    vault, _ = make_vault(max_pending=2)
    tickets = [vault.issue(MASTER, TENANT) for _ in range(3)]
    assert vault.redeem(tickets[0]) is not None
    assert vault.redeem(tickets[1]) is not None
    assert vault.redeem(tickets[2]) is None
    assert vault.counters["rejected_capacity"] == 1
    assert vault.pending == 2
    # Rejection keeps working at capacity: replays are still refused.
    assert vault.redeem(tickets[0]) is None
    assert vault.counters["rejected_replayed"] == 1


def test_replay_cache_evicts_expired_entries():
    vault, ticks = make_vault(max_pending=2, lifetime_s=60.0)
    old = [vault.issue(MASTER, TENANT) for _ in range(2)]
    for ticket in old:
        assert vault.redeem(ticket) is not None
    ticks[0] += 61.0  # both cached entries are now past expiry
    fresh = vault.issue(MASTER, TENANT)
    assert vault.redeem(fresh) is not None
    assert vault.counters["rejected_capacity"] == 0
    assert vault.pending == 1


def test_distinct_nonces_even_for_identical_payloads():
    vault, _ = make_vault()
    assert vault.issue(MASTER, TENANT) != vault.issue(MASTER, TENANT)


def test_deterministic_under_injected_rng():
    counter = [0]

    def rng(n):
        counter[0] += 1
        return bytes([counter[0]]) * n

    a = TicketVault(b"s", clock=lambda: 0.0, rng=rng)
    ticket = a.issue(MASTER, TENANT)
    assert ticket[:16] == bytes([1]) * 16
    assert a.redeem(ticket) == (MASTER, TENANT)


@pytest.mark.parametrize("kwargs", [
    dict(secret=b""),
    dict(lifetime_s=0.0),
    dict(lifetime_s=-1.0),
])
def test_vault_construction_rejects_bad_parameters(kwargs):
    kwargs.setdefault("secret", b"ok")
    with pytest.raises(KexError):
        TicketVault(kwargs.pop("secret"), **kwargs)


def test_issue_validates_sizes():
    vault, _ = make_vault()
    with pytest.raises(KexError):
        vault.issue(MASTER[:-1], TENANT)
    with pytest.raises(KexError):
        vault.issue(MASTER, TENANT[:-1])
