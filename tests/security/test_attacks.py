"""Tests for the chosen-plaintext and timing attacks (the paper's claims)."""

import pytest

from repro.core.key import Key
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.security.chosen_plaintext import constant_chosen_plaintext_attack
from repro.security.timing_attack import (
    spans_from_ready_gaps,
    timing_attack,
)


class TestChosenPlaintext:
    def test_hhea_fully_broken(self, key16):
        report = constant_chosen_plaintext_attack("hhea", key16,
                                                  vectors_per_pair=48)
        assert report.accuracy == 1.0

    def test_mhhea_resists(self, key16):
        """The paper: 'we have scrambled the location and the message to
        overcome constant chosen-plaintext attack'."""
        report = constant_chosen_plaintext_attack("mhhea", key16,
                                                  vectors_per_pair=48)
        assert report.accuracy <= 0.2

    def test_all_ones_variant_also_breaks_hhea(self, key16):
        report = constant_chosen_plaintext_attack("hhea", key16,
                                                  vectors_per_pair=48,
                                                  plaintext_bit=1)
        assert report.accuracy == 1.0

    def test_hhea_profiles_are_contiguous_windows(self, key16):
        report = constant_chosen_plaintext_attack("hhea", key16,
                                                  vectors_per_pair=48)
        for profile, pair in zip(report.always_zero_profile, report.true_pairs):
            assert profile == list(range(pair[0], pair[1] + 1))

    def test_unknown_algorithm_rejected(self, key16):
        with pytest.raises(ValueError):
            constant_chosen_plaintext_attack("des", key16)

    def test_bad_plaintext_bit_rejected(self, key16):
        with pytest.raises(ValueError):
            constant_chosen_plaintext_attack("hhea", key16, plaintext_bit=2)


class TestTimingAttack:
    def test_serial_design_leaks_spans(self, key16):
        run = HheaSerialCycleModel(key16).run([1, 0] * 2048, seed=5)
        report = timing_attack(run, key16)
        assert report.accuracy >= 0.5
        assert report.entropy_reduction_bits() > 20.0

    def test_improved_design_does_not(self, key16):
        """Every output takes two cycles, so gap-based span recovery
        collapses to guessing span 1 for every pair."""
        run = MhheaCycleModel(key16).run([1, 0] * 2048, seed=5)
        report = timing_attack(run, key16, setup_cycles=1)
        true_span_one = sum(1 for s in report.true_spans if s == 1)
        assert report.correct <= true_span_one + 1

    def test_spans_from_gaps_unit(self):
        # outputs every (1 + span) cycles for spans [3, 5]
        ready = [0, 4, 10, 14, 20, 24, 30]
        spans, counts = spans_from_ready_gaps(ready, n_pairs=2)
        assert spans == [5, 3]  # gap attribution: output i -> pair i%2
        assert counts == [3, 3]

    def test_spans_mode_rejects_outliers(self):
        # one reload-inflated gap must not move the estimate
        ready = [0, 4, 8, 12, 19, 23]
        spans, _ = spans_from_ready_gaps(ready, n_pairs=1)
        assert spans == [3]

    def test_empty_observations(self):
        spans, counts = spans_from_ready_gaps([5], n_pairs=4)
        assert spans == [None] * 4
        assert counts == [0] * 4

    def test_report_accuracy_bounds(self, key16):
        run = HheaSerialCycleModel(key16).run([1] * 512, seed=6)
        report = timing_attack(run, key16)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.n_pairs == 16
