"""Tests for the randomness battery and the avalanche profile."""

import pytest

from repro.core.key import Key
from repro.security.avalanche import avalanche_profile
from repro.security.randomness import (
    autocorrelation_test,
    block_frequency_test,
    monobit_test,
    poker_test,
    runs_test,
)
from repro.security.randomness import test_bits as run_battery
from repro.util.lfsr import Lfsr
from repro.util.rng import make_rng


def lfsr_stream(n=20000, seed=0xACE1):
    return Lfsr(16, seed=seed).next_bits(n)


class TestIndividualTests:
    def test_constant_stream_fails_monobit(self):
        assert not monobit_test([0] * 1000).passed

    def test_alternating_stream_fails_runs(self):
        assert not runs_test([0, 1] * 500).passed

    def test_biased_blocks_fail_block_frequency(self):
        stream = ([0] * 128 + [1] * 128) * 10
        assert not block_frequency_test(stream).passed

    def test_repeating_nibble_fails_poker(self):
        assert not poker_test([1, 0, 1, 0] * 500).passed

    def test_periodic_stream_fails_autocorrelation(self):
        assert not autocorrelation_test([0, 0, 1, 1] * 500, lag=2).passed

    def test_python_rng_passes_everything(self):
        rng = make_rng(42)
        stream = [rng.getrandbits(1) for _ in range(20000)]
        assert run_battery(stream).all_passed

    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            monobit_test([0, 1] * 10)

    def test_non_bits_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([2] * 200)


class TestLfsrAndCiphertext:
    def test_lfsr_passes_battery(self):
        report = run_battery(lfsr_stream())
        assert report.all_passed, report.render()

    def test_random_plaintext_ciphertext_passes(self, key16):
        from repro.core import mhhea
        from repro.util.bits import int_to_bits
        from repro.util.rng import make_rng

        rng = make_rng(0xD1CE)
        bits = [rng.getrandbits(1) for _ in range(4000)]
        vectors = mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=0xD1CE))
        stream = []
        for vector in vectors:
            stream.extend(int_to_bits(vector, 16))
        report = run_battery(stream)
        assert len(report.failed()) <= 1, report.render()

    def test_constant_plaintext_ciphertext_is_biased(self, key16):
        """Honest negative result: the data scrambling XORs a *fixed*
        per-pair pattern, so a constant plaintext leaves a detectable
        frequency bias in the window half of the vectors.  MHHEA hides
        the key against this traffic, but not the traffic's nature."""
        from repro.core import mhhea
        from repro.util.bits import int_to_bits

        bits = [1] * 4000
        vectors = mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=0xD1CE))
        stream = []
        for vector in vectors:
            stream.extend(int_to_bits(vector, 16))
        report = run_battery(stream)
        assert not report.all_passed

    def test_render_lists_all_tests(self):
        text = run_battery(lfsr_stream(4000)).render()
        assert "monobit" in text
        assert "poker" in text
        assert "autocorrelation" in text


class TestAvalanche:
    def test_message_flip_changes_exactly_one_bit(self, key16):
        profile = avalanche_profile(key16, n_trials=12, message_bits=128)
        assert profile.message_flip_mean_bits == pytest.approx(1.0)

    def test_key_flip_diffuses_more_than_message_flip(self, key16):
        profile = avalanche_profile(key16, n_trials=12, message_bits=128)
        total_bits = 128 * 2.0  # rough ciphertext size lower bound
        assert profile.key_flip_mean_ratio * total_bits > 1.0

    def test_seed_flip_rerandomises_heavily(self, key16):
        profile = avalanche_profile(key16, n_trials=12, message_bits=128)
        assert profile.seed_flip_mean_ratio > 0.25

    def test_trials_validated(self, key16):
        with pytest.raises(ValueError):
            avalanche_profile(key16, n_trials=0)
