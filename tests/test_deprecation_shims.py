"""The legacy-path contract: one DeprecationWarning, identical bytes.

Every legacy stringly-typed call path (``engine=`` by name at the
stream entry points and ``ParallelCodec``, the server/client ``engine=``
override, ``engine=``/``parallel_workers=`` on the link helpers) must

1. emit **exactly one** :class:`DeprecationWarning`, and
2. produce wire bytes identical to the :class:`repro.api.Codec` path,

while the facade paths themselves stay warning-free.  This is the
satellite contract of the api_redesign PR, checked differentially over
both engines.
"""

import warnings

import pytest

from repro.api import Codec, connect, open_codec, serve
from repro.core.stream import (
    decrypt_packet,
    decrypt_packets,
    encrypt_packet,
    encrypt_packets,
)
from repro.net import SecureLinkClient, SecureLinkServer
from repro.parallel import ParallelCodec

PAYLOAD = bytes(i % 241 for i in range(10_000))


def assert_warns_once(record):
    """Exactly one DeprecationWarning in a pytest.warns record."""
    deprecations = [w for w in record
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, [str(w.message) for w in record]
    return str(deprecations[0].message)


@pytest.fixture(params=["reference", "fast"])
def engine(request):
    return request.param


@pytest.fixture
def codec(key16, engine):
    with open_codec(key16, engine=engine) as bound:
        yield bound


class TestStreamShims:
    def test_encrypt_packet_name_warns_once_and_matches(self, key16, engine,
                                                        codec):
        with pytest.warns(DeprecationWarning) as record:
            packet = encrypt_packet(PAYLOAD[:900], key16, nonce=0x5EED,
                                    engine=engine)
        message = assert_warns_once(record)
        assert "Codec" in message
        assert packet == codec.encrypt(PAYLOAD[:900], nonce=0x5EED)

    def test_decrypt_packet_name_warns_once_and_matches(self, key16, engine,
                                                        codec):
        packet = codec.encrypt(PAYLOAD[:900], nonce=0x5EED)
        with pytest.warns(DeprecationWarning) as record:
            payload = decrypt_packet(packet, key16, engine=engine)
        assert_warns_once(record)
        assert payload == PAYLOAD[:900]

    def test_packet_batches_warn_once_and_match(self, key16, engine, codec):
        payloads = [b"one", b"two", b"three"]
        nonces = [0x21, 0x22, 0x23]
        with pytest.warns(DeprecationWarning) as record:
            packets = encrypt_packets(payloads, key16, nonces, engine=engine)
        assert_warns_once(record)
        assert packets == codec.encrypt_packets(payloads, nonces)
        with pytest.warns(DeprecationWarning) as record:
            assert decrypt_packets(packets, key16, engine=engine) == payloads
        assert_warns_once(record)

    def test_default_and_object_selectors_stay_silent(self, key16, engine):
        from repro.core.engines import get_engine

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            packet = encrypt_packet(b"silent", key16)  # None -> default
            decrypt_packet(packet, key16)
            backend = get_engine(engine)
            packet = encrypt_packet(b"silent", key16, engine=backend)
            assert decrypt_packet(packet, key16, engine=backend) == b"silent"


class TestParallelShims:
    def test_parallel_codec_name_warns_once_and_matches(self, key16, engine):
        with pytest.warns(DeprecationWarning) as record:
            legacy = ParallelCodec(key16, chunk_size=2048, engine=engine)
        message = assert_warns_once(record)
        assert "Codec" in message
        blob = legacy.encrypt_blob(PAYLOAD)
        with open_codec(key16, engine=engine, chunk_size=2048) as bound:
            assert bound.seal_blob(PAYLOAD) == blob
            assert bound.open_blob(blob) == PAYLOAD

    def test_parallel_codec_default_stays_silent_and_fast(self, key16):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            codec = ParallelCodec(key16)
        assert codec.engine == "fast"  # historical default preserved


class TestLinkShims:
    def test_server_engine_override_warns_once(self, key16, engine):
        with pytest.warns(DeprecationWarning) as record:
            server = SecureLinkServer(key16, engine=engine)
        assert_warns_once(record)
        assert server._config.engine == engine

    def test_client_engine_override_warns_once(self, key16, engine):
        with pytest.warns(DeprecationWarning) as record:
            client = SecureLinkClient(key16, engine=engine)
        assert_warns_once(record)
        assert client._config.engine == engine

    def test_connect_serve_legacy_kwargs_warn_once(self, key16, engine):
        with pytest.warns(DeprecationWarning) as record:
            client = connect(key16, engine=engine, parallel_workers=2)
        message = assert_warns_once(record)
        assert "open_codec" in message
        assert client._config.engine == engine
        assert client._config.parallel_workers == 2
        with pytest.warns(DeprecationWarning) as record:
            server = serve(key16, parallel_workers=2)
        assert_warns_once(record)
        assert server._config.parallel_workers == 2

    def test_connect_serve_with_codec_stay_silent(self, key16, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            codec = open_codec(key16, engine=engine)
            connect(codec)
            serve(codec)

    def test_legacy_link_config_equals_codec_config(self, key16, engine):
        with pytest.warns(DeprecationWarning):
            legacy_client = connect(key16, engine=engine, parallel_workers=2)
        codec = Codec(key16, engine=engine, workers=2)
        assert legacy_client._config == codec.session_config()


class TestFacadeIsWarningFree:
    """The whole new-path lifecycle under warnings-as-errors."""

    def test_codec_lifecycle_never_warns(self, key16, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with open_codec(key16, engine=engine, workers=1,
                            chunk_size=2048) as codec:
                packet = codec.encrypt(b"quiet", nonce=0x31)
                assert codec.decrypt(packet) == b"quiet"
                blob = codec.seal_blob(PAYLOAD)
                assert codec.open_blob(blob) == PAYLOAD
                packets = codec.encrypt_packets([b"a", b"b"], [1, 2])
                assert codec.decrypt_packets(packets) == [b"a", b"b"]

    def test_session_paths_never_warn(self, key16, engine):
        from repro.net.session import Session

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            codec = Codec(key16, engine=engine, rekey_interval=4)
            sender = Session(codec, "initiator", b"shimtest")
            receiver = Session(codec, "responder", b"shimtest")
            for i in range(9):  # crosses two rekey boundaries
                payload = bytes([i]) * 50
                assert receiver.decrypt(sender.encrypt(payload)) == payload
