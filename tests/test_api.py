"""The Codec facade: lifecycle, byte-identity with legacy paths, links.

The acceptance contract of the api_redesign PR: a round trip through
``repro.api.Codec`` — both engines, packet and chunked-blob paths, with
and without a pool — is byte-identical on the wire to the legacy entry
points.
"""

import asyncio
import warnings

import pytest

import repro
from repro.api import Codec, connect, open_codec, serve
from repro.core.errors import CipherFormatError, UnknownEngineError
from repro.core.stream import (
    ALGORITHM_HHEA,
    decrypt_packet,
    encrypt_packet,
    encrypt_packets,
)
from repro.net.session import Session, SessionConfig
from repro.parallel import EncryptionPool, ParallelCodec

PAYLOAD = bytes(i % 251 for i in range(50_000))
SID = b"apitests"


def legacy(call, *args, **kwargs):
    """Run a legacy stringly-typed call with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return call(*args, **kwargs)


class TestConstruction:
    def test_accepts_key_and_hex(self, key16):
        assert Codec(key16).key is key16
        hex_key = key16.to_hex()
        assert Codec(hex_key).key == key16

    def test_rejects_non_key(self):
        with pytest.raises(TypeError, match="key"):
            Codec(12345)

    def test_unknown_engine_fails_eagerly(self, key16):
        with pytest.raises(UnknownEngineError, match="registered engines"):
            Codec(key16, engine="turbo")

    def test_algorithm_spellings(self, key16):
        assert Codec(key16, algorithm="hhea").algorithm == ALGORITHM_HHEA
        assert Codec(key16, algorithm=ALGORITHM_HHEA).algorithm == ALGORITHM_HHEA
        with pytest.raises(CipherFormatError, match="algorithm"):
            Codec(key16, algorithm="rot13")

    def test_bad_workers_and_chunk_size(self, key16):
        with pytest.raises(ValueError):
            Codec(key16, workers=-1)
        with pytest.raises(ValueError):
            Codec(key16, chunk_size=0)

    def test_introspection(self, key16):
        codec = Codec(key16, engine="fast")
        assert codec.engine_name == "fast"
        assert codec.params is key16.params
        assert "fast" in repr(codec)

    def test_open_codec_is_the_front_door(self, key16):
        with open_codec(key16, engine="fast") as codec:
            assert isinstance(codec, Codec)


@pytest.mark.parametrize("engine", ["reference", "fast"])
class TestByteIdentityWithLegacyPaths:
    """The acceptance-criterion differential, per engine."""

    def test_single_packet(self, key16, engine):
        with open_codec(key16, engine=engine) as codec:
            packet = codec.encrypt(PAYLOAD[:2000], nonce=0x5EED)
            assert packet == legacy(encrypt_packet, PAYLOAD[:2000], key16,
                                    nonce=0x5EED, engine=engine)
            assert codec.decrypt(packet) == PAYLOAD[:2000]
            assert legacy(decrypt_packet, packet, key16,
                          engine=engine) == PAYLOAD[:2000]

    def test_packet_batch(self, key16, engine):
        payloads = [PAYLOAD[:700], b"", PAYLOAD[700:1500]]
        nonces = [0x11, 0x22, 0x33]
        with open_codec(key16, engine=engine) as codec:
            packets = codec.encrypt_packets(payloads, nonces)
            assert packets == legacy(encrypt_packets, payloads, key16,
                                     nonces, engine=engine)
            assert codec.decrypt_packets(packets) == payloads

    def test_blob_inline(self, key16, engine):
        with open_codec(key16, engine=engine, chunk_size=4096) as codec:
            blob = codec.seal_blob(PAYLOAD)
            reference = legacy(ParallelCodec, key16, chunk_size=4096,
                               engine=engine).encrypt_blob(PAYLOAD)
            assert blob == reference
            assert codec.open_blob(blob) == PAYLOAD

    def test_blob_with_pool(self, key16, engine):
        with open_codec(key16, engine=engine, workers=2,
                        chunk_size=4096) as pooled:
            blob = pooled.seal_blob(PAYLOAD)
            assert pooled.open_blob(blob) == PAYLOAD
        with open_codec(key16, engine=engine, chunk_size=4096) as inline:
            assert inline.seal_blob(PAYLOAD) == blob

    def test_batch_with_pool_matches_inline(self, key16, engine):
        payloads = [PAYLOAD[:9000], PAYLOAD[9000:20000], PAYLOAD[:1]]
        nonces = [0x51, 0x52, 0x53]
        with open_codec(key16, engine=engine, workers=2) as pooled:
            packets = pooled.encrypt_packets(payloads, nonces)
            assert pooled.decrypt_packets(packets) == payloads
        with open_codec(key16, engine=engine) as inline:
            assert inline.encrypt_packets(payloads, nonces) == packets

    def test_single_chunk_blob_equals_plain_packet(self, key16, engine):
        with open_codec(key16, engine=engine) as codec:
            small = b"fits in one chunk"
            assert codec.seal_blob(small, base_nonce=0x77) == codec.encrypt(
                small, nonce=0x77)


class TestBatchValidation:
    def test_nonce_count_mismatch(self, key16):
        with open_codec(key16) as codec:
            with pytest.raises(ValueError, match="nonces"):
                codec.encrypt_packets([b"x"], [])


class TestPoolOwnership:
    def test_owned_pool_is_lazy_and_closed(self, key16):
        codec = Codec(key16, workers=1)
        assert codec.pool is None  # not started yet
        codec.encrypt_packets([b"a", b"b"], [1, 2])
        pool = codec.pool
        assert isinstance(pool, EncryptionPool)
        codec.close()
        assert codec.pool is None
        with pytest.raises(RuntimeError):
            pool.executor  # the owned pool really was shut down

    def test_shared_pool_never_closed(self, key16):
        with EncryptionPool(1, key=key16) as pool:
            with Codec(key16, pool=pool) as codec:
                blob = codec.seal_blob(PAYLOAD[:10_000])
                assert codec.open_blob(blob) == PAYLOAD[:10_000]
                assert codec.pool is pool
            # Codec exit must not have closed the shared pool.
            assert pool.executor is not None

    def test_closed_codec_refuses_all_work(self, key16):
        codec = Codec(key16, workers=1)
        packet = codec.encrypt(b"x", nonce=1)
        codec.close()
        # Use-after-close fails uniformly, not only once a pool would
        # engage — small inline payloads included.
        for call in (lambda: codec.encrypt(b"x", nonce=1),
                     lambda: codec.decrypt(packet),
                     lambda: codec.encrypt_packets([b"a", b"b"], [1, 2]),
                     lambda: codec.decrypt_packets([packet, packet]),
                     lambda: codec.seal_blob(b"x"),
                     lambda: codec.open_blob(packet)):
            with pytest.raises(RuntimeError, match="closed"):
                call()

    def test_workers_zero_never_starts_a_pool(self, key16):
        with Codec(key16) as codec:
            codec.seal_blob(PAYLOAD)
            codec.encrypt_packets([b"a", b"b"], [1, 2])
            assert codec.pool is None

    def test_single_packet_blob_opens_without_starting_pool(self, key16):
        with Codec(key16, workers=2) as codec:
            packet = codec.encrypt(b"tiny", nonce=0x99)
            assert codec.open_blob(packet) == b"tiny"
            assert codec.pool is None  # no workers spawned for one chunk

    def test_unregistered_engine_instance_inline_ok_pooled_rejected(self,
                                                                    key16):
        from repro.core.engines import FastEngine

        class Unregistered(FastEngine):
            name = "unregistered"

        backend = Unregistered()
        # Inline codecs accept any Engine instance...
        with Codec(key16, engine=backend) as codec:
            packet = codec.encrypt(b"inline only", nonce=0x41)
            assert codec.decrypt(packet) == b"inline only"
        # ...but pooled ones must be re-resolvable by name in workers,
        # and fail eagerly at construction, not mid-batch.
        with pytest.raises(UnknownEngineError, match="register_engine"):
            Codec(key16, engine=backend, workers=2)


class TestSessionConfigDerivation:
    def test_fields_propagate(self, key16):
        codec = Codec(key16, engine="fast", workers=3, rekey_interval=64,
                      max_payload=4096, parallel_threshold=2048,
                      algorithm="hhea")
        config = codec.session_config()
        assert config == SessionConfig(
            algorithm=ALGORITHM_HHEA, rekey_interval=64, max_payload=4096,
            engine="fast", parallel_workers=3, parallel_threshold=2048)

    def test_session_accepts_codec(self, key16):
        codec = Codec(key16, engine="fast", rekey_interval=16)
        session = Session(codec, "initiator", SID)
        assert session.config.rekey_interval == 16
        assert session.config.engine == "fast"
        # Byte-identical to a session built the long way.
        long_way = Session(key16, "initiator", SID,
                           config=codec.session_config())
        assert session.encrypt(b"payload") == long_way.encrypt(b"payload")


class TestLinkHelpers:
    def run(self, coroutine):
        asyncio.run(coroutine)

    def test_connect_serve_round_trip(self, key16):
        async def body():
            codec = open_codec(key16, engine="fast")
            async with serve(codec, port=0) as server:
                async with connect(codec, port=server.port,
                                   session_id=SID) as client:
                    assert await client.request(b"facade link") == b"facade link"
            assert server.errors == []

        self.run(body())

    def test_serve_custom_handler(self, key16):
        async def body():
            codec = open_codec(key16)
            async with serve(codec, port=0,
                             handler=lambda p: p[::-1]) as server:
                async with connect(codec, port=server.port,
                                   session_id=SID) as client:
                    assert await client.request(b"abc") == b"cba"

        self.run(body())

    def test_server_and_client_accept_codec_directly(self, key16):
        from repro.net import SecureLinkClient, SecureLinkServer

        async def body():
            codec = open_codec(key16, rekey_interval=32)
            async with SecureLinkServer(codec, port=0) as server:
                async with SecureLinkClient(codec, port=server.port,
                                            session_id=SID) as client:
                    assert await client.request(b"direct") == b"direct"
                    assert client.session.config.rekey_interval == 32

        self.run(body())

    def test_codec_plus_legacy_kwargs_is_an_error(self, key16):
        codec = open_codec(key16)
        with pytest.raises(TypeError, match="legacy"):
            connect(codec, engine="fast")
        with pytest.raises(TypeError, match="legacy"):
            serve(codec, parallel_workers=2)


class TestTopLevelExports:
    def test_facade_reexports(self):
        assert repro.open_codec is open_codec
        assert repro.connect is connect
        assert repro.serve is serve
        assert repro.Codec is Codec
        for name in ("Codec", "open_codec", "connect", "serve",
                     "register_engine", "get_engine", "registered_engines",
                     "UnknownEngineError"):
            assert name in repro.__all__


class TestKexFacade:
    def run(self, coroutine):
        asyncio.run(coroutine)

    def pump(self, initiator, responder):
        while initiator.bytes_to_send or responder.bytes_to_send:
            responder.receive_data(initiator.data_to_send())
            initiator.receive_data(responder.data_to_send())

    def test_codec_link_negotiates_ecdh(self, key16):
        codec = open_codec(key16)
        initiator = codec.link("initiator", session_id=SID, kex="ecdh")
        responder = codec.link("responder", kex="ecdh")
        self.pump(initiator, responder)
        assert initiator.kex_mode == responder.kex_mode == "ecdh"
        assert initiator.fingerprint == responder.fingerprint

    def test_codec_link_resumes_from_an_issued_ticket(self, key16):
        codec = open_codec(key16)
        responder = codec.link("responder", kex="ecdh")
        initiator = codec.link("initiator", session_id=SID, kex="ecdh")
        self.pump(initiator, responder)
        ticket = initiator.issued_ticket
        assert ticket is not None
        # The vault sealing secret is derived from the codec's key, so
        # even a *fresh* responder (think: restarted server) can unseal
        # the ticket and resume.
        again = codec.link("initiator", session_id=SID, kex="ecdh",
                           ticket=ticket)
        fresh = codec.link("responder", kex="ecdh")
        self.pump(again, fresh)
        assert again.kex_mode == fresh.kex_mode == "resume"
        assert again.fingerprint != initiator.fingerprint

    def test_psk_spelling_matches_none(self, key16):
        codec = open_codec(key16)
        initiator = codec.link("initiator", session_id=SID, kex="psk")
        responder = codec.link("responder")
        self.pump(initiator, responder)
        assert initiator.kex_mode == responder.kex_mode == "psk"

    def test_ticket_without_kex_is_rejected(self, key16):
        codec = open_codec(key16)
        with pytest.raises(ValueError, match="kex='ecdh'"):
            codec.link("initiator", ticket=object())

    def test_unknown_kex_selector_rejected(self, key16):
        codec = open_codec(key16)
        with pytest.raises(ValueError, match="unknown kex selector"):
            codec.link("initiator", kex="rsa")

    def test_serve_connect_negotiate_and_resume(self, key16):
        async def body():
            codec = open_codec(key16)
            async with serve(codec, port=0, kex="ecdh") as server:
                async with connect(codec, port=server.port, session_id=SID,
                                   kex="ecdh") as client:
                    assert await client.request(b"kex") == b"kex"
                    assert client.kex_mode == "ecdh"
                    ticket = client.issued_ticket
                assert ticket is not None
                async with connect(codec, port=server.port, session_id=SID,
                                   kex="ecdh", ticket=ticket) as client:
                    assert await client.request(b"again") == b"again"
                    assert client.kex_mode == "resume"
            assert server.errors == []

        self.run(body())

    def test_classic_client_still_speaks_to_a_kex_server(self, key16):
        async def body():
            codec = open_codec(key16)
            async with serve(codec, port=0, kex="ecdh") as server:
                async with connect(codec, port=server.port,
                                   session_id=SID) as client:
                    assert await client.request(b"psk") == b"psk"
                    assert client.kex_mode == "psk"

        self.run(body())

    def test_udp_transport_refuses_kex(self, key16):
        codec = open_codec(key16)
        with pytest.raises(ValueError, match="udp"):
            serve(codec, transport="udp", kex="ecdh")
        with pytest.raises(ValueError, match="udp"):
            connect(codec, transport="udp", kex="ecdh")
