"""Cross-subsystem integration tests: the full communication scenarios
the paper motivates (packet links, hardware/software interop, stego)."""

from repro.core.key import Key
from repro.core.mhhea import EncryptedMessage, MhheaCipher
from repro.core.stream import decrypt_packet, encrypt_packet, split_packets
from repro.rtl.testbench import MhheaHardwareDriver
from repro.rtl.top import build_mhhea_top
from repro.stego.shuffler import Shuffler
from repro.util.bits import bits_to_bytes, bytes_to_bits


class TestPacketLink:
    def test_many_packets_over_one_wire(self, key16):
        payloads = [f"packet {i}".encode() for i in range(10)]
        wire = b"".join(
            encrypt_packet(p, key16, nonce=100 + i)
            for i, p in enumerate(payloads)
        )
        received = [decrypt_packet(p, key16) for p in split_packets(wire)]
        assert received == payloads

    def test_two_parties_share_only_key_and_format(self):
        sender_key = Key.from_hex("03:25:71:46:10:52:33:07")
        receiver_key = Key.from_hex("03:25:71:46:10:52:33:07")
        packet = encrypt_packet(b"no other shared state", sender_key,
                                nonce=0xABCD)
        assert decrypt_packet(packet, receiver_key) == b"no other shared state"


class TestHardwareSoftwareInterop:
    def test_software_decrypts_hardware_ciphertext(self, key16):
        """A software receiver (framed mode) understands the gate-level
        encryptor's output — the deployment story of the paper."""
        driver = MhheaHardwareDriver(top=build_mhhea_top(seed=0xFACE))
        plaintext = b"hw encrypts, sw decrypts"  # 6 blocks
        bits = bytes_to_bits(plaintext)
        run = driver.run(bits, key16)
        from repro.core import mhhea

        recovered = mhhea.decrypt_bits(run.vectors, key16, len(bits),
                                       frame_bits=16)
        assert bits_to_bytes(recovered) == plaintext


class TestShuffledSteganographicLink:
    def test_cipher_plus_shuffler(self, key16):
        """The paper's 'shuffled-type steganography' combination."""
        cipher = MhheaCipher(key16)
        shuffler = Shuffler(key_seed=0x77, block=8)
        message = cipher.encrypt(b"combined pipeline", seed=5)
        wire = shuffler.shuffle(list(message.vectors))
        # eavesdropper sees permuted vectors; receiver undoes both layers
        restored = EncryptedMessage(
            tuple(shuffler.unshuffle(wire)), message.n_bits, message.width
        )
        assert cipher.decrypt(restored) == b"combined pipeline"
