"""Tests for the serial HHEA cycle model (the paper's baseline)."""

from hypothesis import given, settings, strategies as st

from repro.core import hhea
from repro.core.key import Key
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.util.bits import bytes_to_bits
from repro.util.lfsr import Lfsr


class TestReferenceEquivalence:
    @given(st.binary(min_size=1, max_size=20), st.integers(1, 0xFFFF))
    @settings(max_examples=20, deadline=None)
    def test_vectors_equal_framed_hhea(self, payload, seed):
        key = Key.generate(seed=3)
        bits = bytes_to_bits(payload)
        run = HheaSerialCycleModel(key).run(bits, seed=seed)
        ref = hhea.encrypt_bits(bits, key, Lfsr(16, seed=seed), frame_bits=16)
        assert run.vectors == ref

    def test_empty_message(self, key16):
        run = HheaSerialCycleModel(key16).run([])
        assert run.vectors == []

    def test_decryptable(self, key16):
        bits = bytes_to_bits(b"serial but correct")
        run = HheaSerialCycleModel(key16).run(bits, seed=77)
        assert hhea.decrypt_bits(run.vectors, key16, len(bits),
                                 frame_bits=16) == bits


class TestKeyDependentTiming:
    """The property the paper criticises: cycles leak the key."""

    def test_gap_equals_window_plus_setup(self):
        key = Key([(2, 5)])  # span 4
        run = HheaSerialCycleModel(key).run([1] * 64, seed=9)
        gaps = [b - a for a, b in zip(run.ready_cycles, run.ready_cycles[1:])]
        # steady-state gaps are 1 (setup) + 4 (bits); reloads add extra
        assert gaps.count(5) >= len(gaps) * 0.6

    def test_wide_key_slower_than_narrow_per_vector(self):
        narrow = HheaSerialCycleModel(Key([(3, 3)])).run([1] * 64, seed=5)
        wide = HheaSerialCycleModel(Key([(0, 7)])).run([1] * 64, seed=5)
        assert narrow.cycles_per_vector < wide.cycles_per_vector

    def test_total_time_depends_on_key(self):
        bits = [1] * 128
        t_narrow = HheaSerialCycleModel(Key([(3, 3)])).run(bits, seed=5).total_cycles
        t_wide = HheaSerialCycleModel(Key([(0, 7)])).run(bits, seed=5).total_cycles
        # narrow windows need one vector per bit: far more total cycles
        assert t_narrow > t_wide

    def test_ready_count_matches_vectors(self, key16):
        run = HheaSerialCycleModel(key16).run([1, 0] * 50, seed=2)
        assert len(run.ready_cycles) == len(run.vectors)

    def test_slower_than_improved_design(self, key16):
        from repro.rtl.cycle_model import MhheaCycleModel

        bits = bytes_to_bits(b"performance comparison!")
        serial = HheaSerialCycleModel(key16).run(bits, seed=8)
        improved = MhheaCycleModel(key16).run(bits, seed=8)
        assert serial.cycles_per_vector > improved.cycles_per_vector
