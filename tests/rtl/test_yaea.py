"""Tests for the YAEA-like stream stand-in."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.yaea_like import YaeaLikeCycleModel, decrypt_words


class TestRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=80),
           st.integers(1, 0xFFFF))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, bits, seed):
        run = YaeaLikeCycleModel(seed=seed).run(bits)
        assert decrypt_words(run.vectors, seed, len(bits)) == bits

    def test_empty(self):
        run = YaeaLikeCycleModel(seed=1).run([])
        assert run.vectors == []

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            YaeaLikeCycleModel(seed=0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            decrypt_words([], 1, -1)


class TestThroughputShape:
    def test_one_word_per_cycle(self):
        run = YaeaLikeCycleModel(seed=3).run([1] * 160)  # 10 words
        gaps = [b - a for a, b in zip(run.ready_cycles, run.ready_cycles[1:])]
        assert all(gap == 1 for gap in gaps)

    def test_highest_information_rate_of_the_three(self, key16):
        from repro.rtl.cycle_model import MhheaCycleModel
        from repro.rtl.serial_model import HheaSerialCycleModel

        bits = [1, 0] * 256
        yaea = YaeaLikeCycleModel(seed=3).run(bits)
        mhhea = MhheaCycleModel(key16).run(bits)
        serial = HheaSerialCycleModel(key16).run(bits)
        assert yaea.bits_per_cycle > mhhea.bits_per_cycle > serial.bits_per_cycle

    def test_trace_recording(self):
        run = YaeaLikeCycleModel(seed=3).run([1] * 32, record_trace=True)
        assert run.trace is not None
        assert len(run.trace) == run.total_cycles
