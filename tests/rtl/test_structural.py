"""Gate-level equivalence: structural netlists vs cycle models vs reference.

These are the reproduction's strongest correctness anchors: the same
message, key and seed driven through three independent implementations
(reference cipher in framed mode, behavioural cycle model, gate-level
netlist under the event-driven simulator) must produce identical vector
streams.
"""

import pytest

from repro.core import hhea, mhhea
from repro.core.errors import HardwareModelError
from repro.core.key import Key
from repro.hdl.netlist import netlist_stats
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.rtl.testbench import (
    MhheaHardwareDriver,
    SerialHardwareDriver,
    YaeaHardwareDriver,
)
from repro.rtl.top import build_mhhea_top
from repro.rtl.yaea_like import YaeaLikeCycleModel
from repro.util.bits import bytes_to_bits
from repro.util.lfsr import Lfsr


@pytest.fixture(scope="module")
def mhhea_driver():
    return MhheaHardwareDriver(top=build_mhhea_top(seed=0x5EED))


class TestMhheaGateLevel:
    def test_single_block(self, mhhea_driver, key16):
        bits = bytes_to_bits(b"abcd")
        run = mhhea_driver.run(bits, key16)
        ref = mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=0x5EED),
                                 frame_bits=16)
        assert run.vectors == ref

    def test_multi_block(self, mhhea_driver, key16):
        bits = bytes_to_bits(b"a longer multi-block message!!!!")  # 8 blocks
        run = mhhea_driver.run(bits, key16)
        cm = MhheaCycleModel(key16).run(bits, seed=0x5EED)
        assert run.vectors == cm.vectors
        assert abs(run.total_cycles - cm.total_cycles) <= 1

    def test_reusable_across_runs(self, mhhea_driver, key16):
        bits = bytes_to_bits(b"1234")
        first = mhhea_driver.run(bits, key16)
        second = mhhea_driver.run(bits, key16)
        assert first.vectors == second.vectors

    def test_different_keys_different_output(self, mhhea_driver):
        bits = bytes_to_bits(b"zzzz")
        a = mhhea_driver.run(bits, Key.generate(seed=1))
        b = mhhea_driver.run(bits, Key.generate(seed=2))
        assert a.vectors != b.vectors

    def test_decryptable_by_software(self, mhhea_driver, key16):
        bits = bytes_to_bits(b"hardware to software")  # 5 blocks
        run = mhhea_driver.run(bits, key16)
        assert mhhea.decrypt_bits(run.vectors, key16, len(bits),
                                  frame_bits=16) == bits

    def test_rejects_partial_blocks(self, mhhea_driver, key16):
        with pytest.raises(HardwareModelError):
            mhhea_driver.run([1] * 17, key16)

    def test_rejects_key_length_mismatch(self, mhhea_driver):
        with pytest.raises(HardwareModelError):
            mhhea_driver.run([1] * 32, Key.generate(seed=1, n_pairs=4))

    def test_resource_shape_matches_paper_scale(self, mhhea_driver):
        stats = netlist_stats(mhhea_driver.top.circuit)
        # paper: 205 FFs, 206 TBUFs, 57 IOBs, 393 LUTs (we compare FFs
        # and TBUFs directly; LUTs only exist after mapping)
        assert 180 <= stats.n_dffs <= 230
        assert 150 <= stats.n_tbufs <= 230
        assert 40 <= stats.n_io_bits <= 80


class TestSerialGateLevel:
    def test_matches_cycle_model_and_reference(self, key16):
        driver = SerialHardwareDriver(key=key16, seed=0x0BAD)
        bits = bytes_to_bits(b"serial check 1234567")  # 5 blocks
        run = driver.run(bits, key16)
        ref = hhea.encrypt_bits(bits, key16, Lfsr(16, seed=0x0BAD),
                                frame_bits=16)
        cm = HheaSerialCycleModel(key16).run(bits, seed=0x0BAD)
        assert run.vectors == ref
        assert run.vectors == cm.vectors

    def test_timing_matches_cycle_model(self, key16):
        driver = SerialHardwareDriver(key=key16, seed=0x0BAD)
        bits = bytes_to_bits(b"abcd")
        run = driver.run(bits, key16)
        cm = HheaSerialCycleModel(key16).run(bits, seed=0x0BAD)
        gaps_hw = [b - a for a, b in zip(run.ready_cycles, run.ready_cycles[1:])]
        gaps_cm = [b - a for a, b in zip(cm.ready_cycles, cm.ready_cycles[1:])]
        assert gaps_hw == gaps_cm


class TestYaeaGateLevel:
    def test_matches_cycle_model(self):
        driver = YaeaHardwareDriver(seed=0x7777)
        bits = bytes_to_bits(b"stream!!")
        run = driver.run(bits)
        cm = YaeaLikeCycleModel(seed=0x7777).run(bits)
        assert run.vectors == cm.vectors

    def test_roundtrip_via_software(self):
        from repro.rtl.yaea_like import decrypt_words

        driver = YaeaHardwareDriver(seed=0x2468)
        bits = bytes_to_bits(b"roundtrip")
        run = driver.run(bits)
        assert decrypt_words(run.vectors, 0x2468, len(bits)) == bits
