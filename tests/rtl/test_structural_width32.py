"""Gate-level check of the parametric-width claim (paper section VI).

"A construction that effortlessly allows the user's data block to be
varied" — the structural builders are parametric in the vector geometry,
so a 32-bit-vector MHHEA processor (64-bit blocks, 4-bit keys, 16-bit
windows) must elaborate, simulate, and match the framed reference just
like the paper's 16-bit build.
"""

import pytest

from repro.core import mhhea
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.hdl.netlist import netlist_stats
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.testbench import MhheaHardwareDriver
from repro.rtl.top import build_mhhea_top
from repro.util.bits import bytes_to_bits
from repro.util.lfsr import Lfsr


@pytest.fixture(scope="module")
def wide():
    params = VectorParams(32)
    key = Key.generate(seed=4, n_pairs=16, params=params)
    top = build_mhhea_top(params, n_pairs=16, seed=0xBEEF1)
    return params, key, MhheaHardwareDriver(top)


class TestWidth32Structural:
    def test_gate_level_matches_reference(self, wide):
        params, key, driver = wide
        bits = bytes_to_bits(b"wide vectors in gates!!!")  # 3 x 64-bit blocks
        run = driver.run(bits, key)
        ref = mhhea.encrypt_bits(bits, key, Lfsr(32, seed=0xBEEF1), params,
                                 frame_bits=32)
        assert run.vectors == ref

    def test_gate_level_matches_cycle_model(self, wide):
        params, key, driver = wide
        bits = bytes_to_bits(b"cycle/gate agree wide...")
        hw = driver.run(bits, key)
        cm = MhheaCycleModel(key, params).run(bits, seed=0xBEEF1)
        assert hw.vectors == cm.vectors

    def test_decryptable(self, wide):
        params, key, driver = wide
        bits = bytes_to_bits(b"decrypt the wide build..")
        run = driver.run(bits, key)
        assert mhhea.decrypt_bits(run.vectors, key, len(bits), params,
                                  frame_bits=32) == bits

    def test_resources_scale_with_width(self, wide):
        _, _, driver = wide
        wide_stats = netlist_stats(driver.top.circuit)
        narrow_stats = netlist_stats(build_mhhea_top().circuit)
        # double-width datapath: more FFs and gates, TBUF bus wider
        assert wide_stats.n_dffs > narrow_stats.n_dffs
        assert wide_stats.n_gates > narrow_stats.n_gates
        assert wide_stats.n_tbufs > narrow_stats.n_tbufs
