"""Tests for the structural leap-forward LFSR against the software model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.circuit import Circuit
from repro.hdl.sim import Simulator
from repro.rtl.lfsr import build_lfsr, leap_matrix
from repro.util.bits import int_to_bits
from repro.util.lfsr import Lfsr, PRIMITIVE_TAPS


class TestLeapMatrix:
    @pytest.mark.parametrize("width", [3, 4, 8, 16])
    def test_matches_software_single_steps(self, width):
        """Applying the symbolic matrix must equal stepping the Lfsr."""
        taps = PRIMITIVE_TAPS[width]
        for steps in (1, 2, width):
            matrix = leap_matrix(width, taps, steps)
            for seed in (1, 3, (1 << width) - 1):
                soft = Lfsr(width, seed=seed)
                for _ in range(steps):
                    soft.step()
                bits = int_to_bits(seed, width)
                predicted = 0
                for i, deps in enumerate(matrix):
                    value = 0
                    for j in deps:
                        value ^= bits[j]
                    predicted |= value << i
                assert predicted == soft.state, (width, steps, seed)

    def test_zero_steps_is_identity(self):
        matrix = leap_matrix(8, PRIMITIVE_TAPS[8], 0)
        assert matrix == [frozenset([i]) for i in range(8)]

    def test_bad_args(self):
        with pytest.raises(ValueError):
            leap_matrix(0, (1,), 1)
        with pytest.raises(ValueError):
            leap_matrix(8, (9,), 1)
        with pytest.raises(ValueError):
            leap_matrix(8, PRIMITIVE_TAPS[8], -1)


class TestStructuralLfsr:
    def _build(self, width, seed):
        c = Circuit("t")
        en = c.input_bus("en", 1)
        ports = build_lfsr(c, width, seed=seed, enable=en[0])
        c.set_output("state", ports.state)
        c.set_output("next", ports.next_word)
        return c, Simulator(c)

    @given(st.integers(1, 0xFFFF))
    @settings(max_examples=10, deadline=None)
    def test_word_sequence_matches_software(self, seed):
        c, sim = self._build(16, seed)
        soft = Lfsr(16, seed=seed)
        sim.set_input("en", 1)
        for _ in range(12):
            expected = soft.next_word()
            assert sim.peek("next") == expected
            sim.tick()
            assert sim.peek("state") == expected

    def test_enable_freezes_state(self):
        c, sim = self._build(16, 0xACE1)
        sim.set_input("en", 0)
        sim.tick(5)
        assert sim.peek("state") == 0xACE1

    def test_zero_seed_rejected(self):
        c = Circuit("t")
        en = c.input_bus("en", 1)
        with pytest.raises(ValueError):
            build_lfsr(c, 16, seed=0, enable=en[0])

    def test_unknown_width_rejected(self):
        c = Circuit("t")
        en = c.input_bus("en", 1)
        with pytest.raises(ValueError):
            build_lfsr(c, 23, seed=1, enable=en[0])

    def test_small_width_full_period(self):
        c, sim = self._build(4, 1)
        sim.set_input("en", 1)
        seen = set()
        for _ in range(15):
            seen.add(sim.peek("state"))
            sim.tick()
        # leap-by-4 of a 15-cycle sequence: gcd(4,15)=1 covers everything
        assert len(seen) == 15
