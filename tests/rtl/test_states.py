"""Tests for the FSM vocabulary (paper Figure 1)."""

import pytest

from repro.rtl import states


class TestEncoding:
    def test_six_states(self):
        assert len(states.FSM_STATES) == 6

    def test_encode_decode_roundtrip(self):
        for name in states.FSM_STATES:
            assert states.decode(states.encode(name)) == name

    def test_encodings_fit_register(self):
        for code in states.FSM_STATES.values():
            assert 0 <= code < (1 << states.STATE_BITS)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            states.encode("HALT")
        with pytest.raises(ValueError):
            states.decode(7)


class TestDot:
    def test_dot_contains_all_states_and_guards(self):
        dot = states.fsm_dot()
        for name in states.FSM_STATES:
            assert name in dot
        assert "Key Cache Full" in dot
        assert "EOF" in dot
        assert dot.startswith("digraph")

    def test_transitions_reference_known_states(self):
        for source, _guard, dest in states.TRANSITIONS:
            assert source in states.FSM_STATES
            assert dest in states.FSM_STATES
