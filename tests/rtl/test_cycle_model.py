"""Tests for the MHHEA behavioural cycle model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import mhhea
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.rtl import states
from repro.rtl.cycle_model import MhheaCycleModel, ScriptedVectorSource
from repro.util.bits import bytes_to_bits, int_to_bits
from repro.util.lfsr import Lfsr


class TestReferenceEquivalence:
    @given(st.binary(min_size=1, max_size=24), st.integers(1, 0xFFFF),
           st.integers(1, 1000))
    @settings(max_examples=25, deadline=None)
    def test_vectors_equal_framed_reference(self, payload, seed, key_seed):
        key = Key.generate(seed=key_seed)
        bits = bytes_to_bits(payload)
        run = MhheaCycleModel(key).run(bits, seed=seed)
        ref = mhhea.encrypt_bits(bits, key, Lfsr(16, seed=seed), frame_bits=16)
        assert run.vectors == ref

    @pytest.mark.parametrize("n_bits", [1, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65])
    def test_arbitrary_lengths(self, key16, n_bits):
        bits = [(i * 5 + 1) % 2 for i in range(n_bits)]
        run = MhheaCycleModel(key16).run(bits, seed=0x7E57)
        ref = mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=0x7E57),
                                 frame_bits=16)
        assert run.vectors == ref
        assert mhhea.decrypt_bits(run.vectors, key16, n_bits,
                                  frame_bits=16) == bits

    def test_short_key_wraps_at_l(self, key4):
        bits = bytes_to_bits(b"roundtrips with L=4 keys")
        run = MhheaCycleModel(key4).run(bits, seed=0xAB)
        ref = mhhea.encrypt_bits(bits, key4, Lfsr(16, seed=0xAB), frame_bits=16)
        assert run.vectors == ref

    def test_wider_vector_params(self):
        params = VectorParams(32)
        key = Key.generate(seed=5, params=params)
        bits = bytes_to_bits(b"wide vectors work too!!!")
        run = MhheaCycleModel(key, params).run(bits, seed=0x1D)
        ref = mhhea.encrypt_bits(bits, key, Lfsr(32, seed=0x1D), params,
                                 frame_bits=32)
        assert run.vectors == ref

    def test_empty_message(self, key16):
        run = MhheaCycleModel(key16).run([])
        assert run.vectors == []
        assert run.total_cycles == 0


class TestTimingProperties:
    def test_two_cycles_per_vector_steady_state(self, key16):
        """The headline claim: one output every two cycles, regardless of
        how many bits each window replaces (plus rare reload cycles)."""
        bits = [1, 0] * 256
        run = MhheaCycleModel(key16).run(bits)
        gaps = [b - a for a, b in zip(run.ready_cycles, run.ready_cycles[1:])]
        assert all(gap in (2, 3, 4, 5) for gap in gaps)
        # within a half, gaps are exactly 2
        assert gaps.count(2) > len(gaps) * 0.7

    def test_gap_independent_of_window_width(self):
        """Keys with span 1 and span 8 give identical per-vector timing."""
        narrow = Key([(4, 4)])
        wide = Key([(0, 7)])
        bits = [1] * 64
        run_n = MhheaCycleModel(narrow).run(bits, seed=3)
        run_w = MhheaCycleModel(wide).run(bits, seed=3)
        gaps_n = {b - a for a, b in zip(run_n.ready_cycles, run_n.ready_cycles[1:])}
        gaps_w = {b - a for a, b in zip(run_w.ready_cycles, run_w.ready_cycles[1:])}
        # both dominated by the constant 2-cycle CIRC/ENCRYPT loop
        assert 2 in gaps_n and 2 in gaps_w

    def test_ready_pulse_per_vector(self, key16):
        bits = bytes_to_bits(b"pulse counting")
        run = MhheaCycleModel(key16).run(bits)
        assert len(run.ready_cycles) == len(run.vectors)

    def test_lkey_only_pays_once(self, key16):
        """The key cache fills on block one; later blocks pass through
        LKEY in a single cycle."""
        one_block = MhheaCycleModel(key16).run([1] * 32, seed=9)
        two_blocks = MhheaCycleModel(key16).run([1] * 64, seed=9)
        # if LKEY were re-paid, the delta would include 16 extra cycles
        delta = two_blocks.total_cycles - one_block.total_cycles
        assert delta < one_block.total_cycles

    def test_bits_per_cycle_positive(self, key16):
        run = MhheaCycleModel(key16).run([1] * 128)
        assert 0.5 < run.bits_per_cycle < 8.0


class TestTraceFigures:
    """The per-cycle traces reproduce the paper's simulation figures."""

    def _traced_run(self, key, bits, source=None, seed=0xACE1):
        return MhheaCycleModel(key).run(bits, seed=seed, source=source,
                                        record_trace=True)

    def test_fig5_lmsg_loads_plaintext(self, key16):
        run = self._traced_run(key16, int_to_bits(0xABCD1234, 32))
        trace = run.trace
        lmsg = trace.find("state", states.LMSG)
        assert lmsg >= 0
        assert trace.at(lmsg, "plaintext") == 0xABCD1234
        assert trace.at(lmsg + 1, "msg_cache") == 0xABCD1234

    def test_fig6_lkey_loads_pairs_in_parallel(self, key16):
        run = self._traced_run(key16, [1] * 32)
        trace = run.trace
        cycle = trace.find("state", states.LKEY)
        for offset, pair in enumerate(key16.pairs):
            assert trace.at(cycle + offset, "state") == states.LKEY
            assert trace.at(cycle + offset, "key_left") == pair.k1
            assert trace.at(cycle + offset, "key_right") == pair.k2

    def test_fig7_lmsgcache_takes_low_half_first(self, key16):
        run = self._traced_run(key16, int_to_bits(0xABCD1234, 32))
        trace = run.trace
        cycle = trace.find("state", states.LMSGCACHE)
        assert trace.at(cycle + 1, "buffer") == 0x1234

    def test_fig8_full_worked_example(self, fig8_key):
        source = ScriptedVectorSource([0xCA06] + [0xFFFF] * 20)
        run = self._traced_run(fig8_key, int_to_bits(0x48D0, 16), source=source)
        trace = run.trace
        circ = trace.find("state", states.CIRC)
        assert trace.at(circ, "v") == 0xCA06
        assert trace.at(circ, "kn_small") == 2
        assert trace.at(circ, "kn_large") == 5
        enc = circ + 1
        assert trace.at(enc, "state") == states.ENCRYPT
        assert trace.at(enc, "buffer") == 0x2341      # rotl 2
        assert trace.at(enc + 1, "buffer") == 0x048D  # rotr 6
        assert trace.at(enc + 1, "cipher") == 0xCA02
        assert trace.at(enc + 1, "ready") == 1
        assert run.vectors[0] == 0xCA02

    def test_fsm_visits_states_in_figure1_order(self, key16):
        run = self._traced_run(key16, [1] * 32)
        seq = run.trace.column("state")
        first_occurrence = [seq.index(s) for s in
                            (states.INIT, states.LMSG, states.LKEY,
                             states.LMSGCACHE, states.CIRC, states.ENCRYPT)]
        assert first_occurrence == sorted(first_occurrence)

    def test_done_asserted_at_end(self, key16):
        run = self._traced_run(key16, [1] * 32)
        assert run.trace.at(len(run.trace) - 1, "done") == 1
