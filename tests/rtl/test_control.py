"""Exhaustive transition tests for the structural control FSM."""

import pytest

from repro.hdl.circuit import Circuit
from repro.hdl.sim import Simulator
from repro.rtl import states
from repro.rtl.control import build_control


@pytest.fixture
def fsm():
    c = Circuit("fsm")
    go = c.input_bus("go", 1)
    lkey_done = c.input_bus("lkey_done", 1)
    half_done = c.input_bus("half_done", 1)
    last_half = c.input_bus("last_half", 1)
    eof = c.input_bus("eof", 1)
    ports = build_control(c, go[0], lkey_done[0], half_done[0],
                          last_half[0], eof[0])
    c.set_output("state", ports.state)
    return Simulator(c), ports


def force_state(sim, ports, name):
    """Walk the FSM from reset to the requested state."""
    sim.reset_state()
    sim.set_input("go", 1)
    sim.set_input("lkey_done", 1)
    sim.set_input("half_done", 0)
    sim.set_input("last_half", 0)
    sim.set_input("eof", 0)
    path = [states.INIT, states.LMSG, states.LKEY, states.LMSGCACHE,
            states.CIRC, states.ENCRYPT]
    for _ in range(path.index(name)):
        sim.tick()
    assert states.decode(sim.peek("state")) == name


class TestTransitions:
    def test_init_waits_for_go(self, fsm):
        sim, ports = fsm
        sim.set_input("go", 0)
        sim.tick(3)
        assert states.decode(sim.peek("state")) == states.INIT
        sim.set_input("go", 1)
        sim.tick()
        assert states.decode(sim.peek("state")) == states.LMSG

    def test_lmsg_always_advances_to_lkey(self, fsm):
        sim, ports = fsm
        force_state(sim, ports, states.LMSG)
        sim.tick()
        assert states.decode(sim.peek("state")) == states.LKEY

    def test_lkey_self_loops_until_done(self, fsm):
        sim, ports = fsm
        force_state(sim, ports, states.LKEY)
        sim.set_input("lkey_done", 0)
        sim.tick(4)
        assert states.decode(sim.peek("state")) == states.LKEY
        sim.set_input("lkey_done", 1)
        sim.tick()
        assert states.decode(sim.peek("state")) == states.LMSGCACHE

    def test_circ_encrypt_interleave(self, fsm):
        sim, ports = fsm
        force_state(sim, ports, states.CIRC)
        sim.tick()
        assert states.decode(sim.peek("state")) == states.ENCRYPT
        sim.set_input("half_done", 0)
        sim.tick()
        assert states.decode(sim.peek("state")) == states.CIRC

    @pytest.mark.parametrize(
        "half_done,last_half,eof,expected",
        [
            (0, 0, 0, states.CIRC),
            (0, 1, 1, states.CIRC),        # half not done: guards ignored
            (1, 0, 0, states.LMSGCACHE),   # low half done -> load high
            (1, 0, 1, states.LMSGCACHE),
            (1, 1, 0, states.LMSG),        # block done, more blocks
            (1, 1, 1, states.INIT),        # EOF -> back to Init
        ],
    )
    def test_encrypt_exits(self, fsm, half_done, last_half, eof, expected):
        sim, ports = fsm
        force_state(sim, ports, states.ENCRYPT)
        sim.set_input("half_done", half_done)
        sim.set_input("last_half", last_half)
        sim.set_input("eof", eof)
        sim.tick()
        assert states.decode(sim.peek("state")) == expected

    def test_decodes_are_one_hot(self, fsm):
        sim, ports = fsm
        decodes = [ports.in_init, ports.in_lmsg, ports.in_lkey,
                   ports.in_lmsgcache, ports.in_circ, ports.in_encrypt]
        for name in (states.INIT, states.LMSG, states.LKEY,
                     states.LMSGCACHE, states.CIRC, states.ENCRYPT):
            force_state(sim, ports, name)
            assert sum(d.value for d in decodes) == 1
            hot = [i for i, d in enumerate(decodes) if d.value][0]
            assert hot == states.encode(name)
