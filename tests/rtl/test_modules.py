"""Structural tests for the individual micro-architecture modules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.key import KeyPair, scramble_pair
from repro.core.params import PAPER_PARAMS
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus
from repro.hdl.sim import Simulator
from repro.rtl.alignment import build_alignment
from repro.rtl.comparator import build_sorter
from repro.rtl.encrypt_unit import build_encrypt_unit, build_scrambler
from repro.rtl.key_cache import build_key_cache
from repro.rtl.message_cache import build_message_cache
from repro.util.bits import rotl, rotr


class TestMessageCache:
    def _build(self):
        c = Circuit("t")
        pt = c.input_bus("pt", 32)
        load = c.input_bus("load", 1)
        half = c.input_bus("half", 1)
        ports = build_message_cache(c, pt, load[0], half[0])
        c.set_output("rd", ports.read_data)
        return c, Simulator(c)

    def test_load_and_half_select(self):
        c, sim = self._build()
        sim.set_input("pt", 0xABCD1234)
        sim.set_input("load", 1)
        sim.tick()
        sim.set_input("load", 0)
        sim.set_input("half", 0)
        assert sim.peek("rd") == 0x1234  # low half first (paper Fig. 7)
        sim.set_input("half", 1)
        assert sim.peek("rd") == 0xABCD

    def test_hold_without_load(self):
        c, sim = self._build()
        sim.set_input("pt", 0xAAAA5555)
        sim.set_input("load", 1)
        sim.tick()
        sim.set_input("load", 0)
        sim.set_input("pt", 0xFFFFFFFF)
        sim.tick()
        assert sim.peek("rd") == 0x5555

    def test_odd_width_rejected(self):
        c = Circuit("t")
        pt = c.input_bus("pt", 3)
        load = c.input_bus("load", 1)
        half = c.input_bus("half", 1)
        with pytest.raises(ValueError):
            build_message_cache(c, pt, load[0], half[0])

    def test_uses_tbufs_for_read_mux(self):
        c, _ = self._build()
        assert c.n_tbufs() == 32  # 16 bits x 2 halves


class TestKeyCache:
    def _build(self, n_pairs=16):
        c = Circuit("t")
        kd = c.input_bus("kd", 6)
        addr = c.input_bus("addr", 4)
        wr = c.input_bus("wr", 1)
        ports = build_key_cache(c, kd, addr, wr[0], n_pairs)
        c.set_output("left", ports.left)
        c.set_output("right", ports.right)
        return c, Simulator(c)

    def test_write_then_read_all_slots(self):
        c, sim = self._build()
        pairs = [(i % 8, (i * 3) % 8) for i in range(16)]
        sim.set_input("wr", 1)
        for i, (k1, k2) in enumerate(pairs):
            sim.set_input("addr", i)
            sim.set_input("kd", k1 | (k2 << 3))
            sim.tick()
        sim.set_input("wr", 0)
        for i, (k1, k2) in enumerate(pairs):
            sim.set_input("addr", i)
            assert sim.peek("left") == k1
            assert sim.peek("right") == k2

    def test_write_strobe_required(self):
        c, sim = self._build()
        sim.set_input("addr", 3)
        sim.set_input("kd", 0b101_010)
        sim.set_input("wr", 0)
        sim.tick()
        sim.set_input("wr", 1)
        sim.set_input("kd", 0)
        sim.set_input("addr", 0)
        sim.tick()
        sim.set_input("addr", 3)
        assert sim.peek("left") == 0  # never written

    def test_paper_resource_shape(self):
        c, _ = self._build()
        assert len(c.dffs) == 96  # 16 pairs x 2 registers x 3 bits
        assert c.n_tbufs() == 96

    def test_capacity_validation(self):
        c = Circuit("t")
        kd = c.input_bus("kd", 6)
        addr = c.input_bus("addr", 2)
        wr = c.input_bus("wr", 1)
        with pytest.raises(ValueError):
            build_key_cache(c, kd, addr, wr[0], n_pairs=5)


class TestSorter:
    def test_exhaustive(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        b = c.input_bus("b", 3)
        ports = build_sorter(c, a, b)
        c.set_output("small", ports.small)
        c.set_output("large", ports.large)
        c.set_output("sw", Bus("sw", [ports.swapped]))
        sim = Simulator(c)
        for av in range(8):
            for bv in range(8):
                sim.set_input("a", av)
                sim.set_input("b", bv)
                assert sim.peek("small") == min(av, bv)
                assert sim.peek("large") == max(av, bv)
                assert sim.peek("sw") == int(bv < av)

    def test_width_mismatch(self):
        c = Circuit("t")
        a = c.input_bus("a", 3)
        b = c.input_bus("b", 4)
        with pytest.raises(ValueError):
            build_sorter(c, a, b)


class TestScrambler:
    def _build(self):
        c = Circuit("t")
        v = c.input_bus("v", 16)
        kl = c.input_bus("kl", 3)
        kr = c.input_bus("kr", 3)
        ports = build_scrambler(c, v, kl, kr)
        c.set_output("kns", ports.kn_small)
        c.set_output("knl", ports.kn_large)
        c.set_output("k1", ports.k1_sorted)
        return Simulator(c)

    def test_fig8_example(self):
        sim = self._build()
        sim.set_input("v", 0xCA06)
        sim.set_input("kl", 0)
        sim.set_input("kr", 3)
        assert (sim.peek("kns"), sim.peek("knl")) == (2, 5)
        assert sim.peek("k1") == 0

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 0xFFFF))
    @settings(max_examples=150, deadline=None)
    def test_matches_golden_model(self, k1, k2, vector):
        sim = self._build()
        sim.set_input("v", vector)
        sim.set_input("kl", k1)
        sim.set_input("kr", k2)
        expected = scramble_pair(KeyPair(k1, k2), vector, PAPER_PARAMS)
        assert (sim.peek("kns"), sim.peek("knl")) == expected
        assert sim.peek("k1") == min(k1, k2)


class TestEncryptUnit:
    def _build(self):
        c = Circuit("t")
        v = c.input_bus("v", 16)
        buf = c.input_bus("buf", 16)
        kns = c.input_bus("kns", 3)
        knl = c.input_bus("knl", 3)
        k1 = c.input_bus("k1", 3)
        rem = c.input_bus("rem", 6)
        out = build_encrypt_unit(c, v, buf, kns, knl, k1, rem)
        c.set_output("out", out)
        return Simulator(c)

    @staticmethod
    def _reference(v, buf, kns, knl, k1, rem):
        out = v
        budget = min(knl - kns + 1, rem)
        for offset in range(budget):
            j = kns + offset
            bit = (buf >> j) & 1
            bit ^= (k1 >> (offset % 3)) & 1
            out = (out & ~(1 << j)) | (bit << j)
        return out

    def test_fig8_replacement(self):
        sim = self._build()
        sim.set_input("v", 0xCA06)
        sim.set_input("buf", 0x2341)
        sim.set_input("kns", 2)
        sim.set_input("knl", 5)
        sim.set_input("k1", 0)
        sim.set_input("rem", 16)
        assert sim.peek("out") == 0xCA02

    @given(
        st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
        st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
        st.integers(1, 16),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, v, buf, a, b, k1, rem):
        kns, knl = min(a, b), max(a, b)
        sim = self._build()
        sim.set_input("v", v)
        sim.set_input("buf", buf)
        sim.set_input("kns", kns)
        sim.set_input("knl", knl)
        sim.set_input("k1", k1)
        sim.set_input("rem", rem)
        assert sim.peek("out") == self._reference(v, buf, kns, knl, k1, rem)

    def test_zero_remaining_replaces_nothing(self):
        sim = self._build()
        sim.set_input("v", 0xFFFF)
        sim.set_input("buf", 0x0000)
        sim.set_input("kns", 0)
        sim.set_input("knl", 7)
        sim.set_input("k1", 0)
        sim.set_input("rem", 0)
        assert sim.peek("out") == 0xFFFF


class TestAlignment:
    def _build(self):
        c = Circuit("t")
        data = c.input_bus("data", 16)
        rl = c.input_bus("rl", 3)
        rr = c.input_bus("rr", 4)
        load = c.input_bus("load", 1)
        sl = c.input_bus("sl", 1)
        sr = c.input_bus("sr", 1)
        ports = build_alignment(c, data, rl, rr, load[0], sl[0], sr[0])
        c.set_output("buf", ports.buffer)
        return Simulator(c)

    def test_load_rotate_sequence_fig8(self):
        sim = self._build()
        sim.set_input("data", 0x48D0)
        sim.set_input("load", 1)
        sim.tick()
        sim.set_input("load", 0)
        assert sim.peek("buf") == 0x48D0
        sim.set_input("rl", 2)
        sim.set_input("sl", 1)
        sim.tick()
        sim.set_input("sl", 0)
        assert sim.peek("buf") == 0x2341  # rotl 2 (paper Fig. 8)
        sim.set_input("rr", 6)
        sim.set_input("sr", 1)
        sim.tick()
        sim.set_input("sr", 0)
        assert sim.peek("buf") == 0x048D  # rotr 6 (paper Fig. 8)

    def test_hold_by_default(self):
        sim = self._build()
        sim.set_input("data", 0xBEEF)
        sim.set_input("load", 1)
        sim.tick()
        sim.set_input("load", 0)
        sim.tick(3)
        assert sim.peek("buf") == 0xBEEF

    @given(st.integers(0, 0xFFFF), st.integers(0, 7), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_rotations_match_software(self, value, left, right):
        sim = self._build()
        sim.set_input("data", value)
        sim.set_input("load", 1)
        sim.tick()
        sim.set_input("load", 0)
        sim.set_input("rl", left)
        sim.set_input("sl", 1)
        sim.tick()
        sim.set_input("sl", 0)
        assert sim.peek("buf") == rotl(value, left, 16)
        sim.set_input("rr", right)
        sim.set_input("sr", 1)
        sim.tick()
        sim.set_input("sr", 0)
        assert sim.peek("buf") == rotr(rotl(value, left, 16), right, 16)
