"""Differential tests for the sharded pipeline (DESIGN.md section 9).

The contract under test: a sharded blob is a pure function of
``(payload, key, algorithm, base_nonce, chunk_size)`` — worker count and
engine choice never change a byte.  Chunk-boundary sizes (empty, one
byte, one-under/over the chunk size, primes) are pinned explicitly
because they are exactly where an off-by-one in chunking or reassembly
would hide.
"""

from __future__ import annotations

import pytest

from repro.core.errors import CipherFormatError
from repro.core.stream import NONCE_MAX, encrypt_packet, split_packets
from repro.parallel import (
    DEFAULT_BASE_NONCE,
    ParallelCodec,
    chunk_nonces,
    chunk_payload,
)

#: Small chunk size so the boundary cases stay fast.
CHUNK = 1024

#: Chunk-boundary payload sizes: empty, single byte, the boundaries
#: around one and two chunks, and primes that are coprime to everything.
BOUNDARY_SIZES = [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK,
                  2 * CHUNK + 1, 17, 4099]


def _payload(n: int) -> bytes:
    return bytes(i * 31 % 256 for i in range(n))


class TestChunking:
    def test_empty_payload_is_one_empty_chunk(self):
        assert chunk_payload(b"", 4) == [b""]

    def test_exact_multiple_has_no_empty_tail(self):
        assert chunk_payload(b"abcdef", 3) == [b"abc", b"def"]

    def test_remainder_chunk_is_short(self):
        assert chunk_payload(b"abcde", 3) == [b"abc", b"de"]

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_payload(b"x", 0)


class TestChunkNonces:
    def test_starts_at_base(self):
        assert chunk_nonces(0xACE1, 3, 16) == [0xACE1, 0xACE2, 0xACE3]

    def test_skips_frozen_lfsr_seeds(self):
        # 0x10000 has all-zero low 16 bits: it would freeze the LFSR.
        assert chunk_nonces(0xFFFF, 3, 16) == [0xFFFF, 0x10001, 0x10002]

    def test_frozen_base_rejected_not_substituted(self):
        # A base nonce encrypt_packet would reject must fail loudly, not
        # be silently replaced by the next valid value.
        with pytest.raises(CipherFormatError):
            chunk_nonces(0x20000, 2, 16)

    def test_rejects_out_of_field_base(self):
        with pytest.raises(CipherFormatError):
            chunk_nonces(0, 1, 16)
        with pytest.raises(CipherFormatError):
            chunk_nonces(NONCE_MAX + 1, 1, 16)

    def test_rejects_field_overrun(self):
        with pytest.raises(CipherFormatError):
            chunk_nonces(NONCE_MAX - 1, 3, 16)

    def test_nonces_strictly_increase(self):
        nonces = chunk_nonces(0xFFF0, 64, 16)
        assert all(b > a for a, b in zip(nonces, nonces[1:]))


class TestByteIdentity:
    """The acceptance property: parallel == inline == per-chunk manual."""

    # Class-scoped so one worker pool serves every parametrised case
    # (conftest's key16 is function-scoped; same seed, equal key).
    @pytest.fixture(scope="class")
    def key16(self):
        from repro.core.key import Key

        return Key.generate(seed=2005, n_pairs=16)

    @pytest.fixture(scope="class")
    def pool_codec(self, key16):
        with ParallelCodec(key16, workers=2, chunk_size=CHUNK) as codec:
            yield codec

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_parallel_matches_inline_fast(self, key16, pool_codec, size):
        payload = _payload(size)
        inline = ParallelCodec(key16, chunk_size=CHUNK)
        assert pool_codec.encrypt_blob(payload) == inline.encrypt_blob(payload)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_parallel_matches_reference_engine(self, key16, pool_codec, size):
        payload = _payload(size)
        reference = ParallelCodec(key16, chunk_size=CHUNK,
                                  engine="reference")
        assert (pool_codec.encrypt_blob(payload)
                == reference.encrypt_blob(payload))

    @pytest.mark.parametrize("size", [0, 1, CHUNK, 2 * CHUNK + 1, 4099])
    def test_blob_is_manual_per_chunk_packets(self, key16, pool_codec, size):
        """The framing spec: nothing but standard packets, chunk order."""
        payload = _payload(size)
        chunks = chunk_payload(payload, CHUNK)
        nonces = chunk_nonces(DEFAULT_BASE_NONCE, len(chunks), 16)
        manual = b"".join(
            encrypt_packet(chunk, key16, nonce=nonce, engine="fast")
            for chunk, nonce in zip(chunks, nonces)
        )
        assert pool_codec.encrypt_blob(payload) == manual

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_roundtrip_parallel_both_ways(self, pool_codec, size):
        payload = _payload(size)
        assert pool_codec.decrypt_blob(pool_codec.encrypt_blob(payload)) \
            == payload

    def test_cross_engine_cross_workers_roundtrip(self, key16, pool_codec):
        """Encrypt sharded+fast, decrypt inline+reference (and back)."""
        payload = _payload(3 * CHUNK + 7)
        blob = pool_codec.encrypt_blob(payload)
        reference = ParallelCodec(key16, chunk_size=CHUNK,
                                  engine="reference")
        assert reference.decrypt_blob(blob) == payload
        assert pool_codec.decrypt_blob(reference.encrypt_blob(payload)) \
            == payload

    def test_single_chunk_blob_is_a_plain_packet(self, key16):
        payload = _payload(100)
        inline = ParallelCodec(key16, chunk_size=CHUNK)
        assert inline.encrypt_blob(payload, 0xBEEF) == encrypt_packet(
            payload, key16, nonce=0xBEEF, engine="fast")


class TestBlobStructure:
    def test_chunk_count(self, key16):
        codec = ParallelCodec(key16, chunk_size=CHUNK)
        blob = codec.encrypt_blob(_payload(2 * CHUNK + 1))
        assert len(split_packets(blob)) == 3

    def test_decrypt_accepts_plain_packet(self, key16):
        codec = ParallelCodec(key16)
        packet = encrypt_packet(b"plain single packet", key16)
        assert codec.decrypt_blob(packet) == b"plain single packet"

    def test_decrypt_rejects_empty_blob(self, key16):
        with pytest.raises(CipherFormatError):
            ParallelCodec(key16).decrypt_blob(b"")

    def test_decrypt_rejects_truncated_blob(self, key16):
        codec = ParallelCodec(key16, chunk_size=CHUNK)
        blob = codec.encrypt_blob(_payload(2 * CHUNK))
        with pytest.raises(CipherFormatError):
            codec.decrypt_blob(blob[:-1])

    def test_damaged_chunk_is_detected(self, key16):
        codec = ParallelCodec(key16, chunk_size=CHUNK)
        blob = bytearray(codec.encrypt_blob(_payload(2 * CHUNK)))
        blob[len(blob) // 2] ^= 0x40  # flip one payload bit, second chunk
        with pytest.raises(CipherFormatError):
            codec.decrypt_blob(bytes(blob))


class TestCodecValidation:
    def test_rejects_negative_workers(self, key16):
        with pytest.raises(ValueError):
            ParallelCodec(key16, workers=-1)

    def test_rejects_bad_chunk_size(self, key16):
        with pytest.raises(ValueError):
            ParallelCodec(key16, chunk_size=0)

    def test_rejects_bad_engine(self, key16):
        with pytest.raises(ValueError):
            ParallelCodec(key16, engine="quantum")

    def test_rejects_bad_algorithm(self, key16):
        with pytest.raises(CipherFormatError):
            ParallelCodec(key16, algorithm=9)

    def test_shared_pool_is_not_closed(self, key16):
        from repro.parallel import EncryptionPool

        with EncryptionPool(1, key=key16) as pool:
            codec = ParallelCodec(key16, chunk_size=CHUNK, pool=pool)
            codec.close()  # must not close the borrowed pool
            blob = ParallelCodec(key16, chunk_size=CHUNK,
                                 pool=pool).encrypt_blob(_payload(2 * CHUNK))
            assert len(split_packets(blob)) == 2
