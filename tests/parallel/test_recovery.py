"""Worker-death recovery: a dying process never loses a batch.

A killed worker poisons the whole ``ProcessPoolExecutor`` (every
in-flight future raises ``BrokenProcessPool``), so "graceful recovery"
means :class:`~repro.parallel.pool.EncryptionPool` must rebuild the pool
and re-run exactly the lost jobs, and — if the rebuilt pool dies too —
finish the batch inline.  These tests kill workers for real with
``os._exit`` and assert the batch output is still byte-identical to the
inline path.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import EncryptionPool, ParallelCodec, encrypt_job

pytestmark = pytest.mark.filterwarnings(
    # The killed worker can leave its SimpleQueue helper thread behind.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning",
)


def _crash_once(marker_path: str) -> str:
    """Kill the hosting process the first time, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(1)
    return "survived"


def _crash_unless_parent(parent_pid: int) -> str:
    """Kill every worker; only the parent (inline fallback) survives."""
    if os.getpid() != parent_pid:
        os._exit(1)
    return "inline"


def _kill_pool(pool: EncryptionPool) -> None:
    """Deterministically break the live pool by crashing a worker."""
    future = pool.submit(os._exit, 1)
    with pytest.raises(Exception):
        future.result()


class TestPoolRecovery:
    def test_rebuilds_after_mid_batch_crash(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        with EncryptionPool(1) as pool:
            results = pool.run_jobs(_crash_once, [(marker,)])
            assert results == ["survived"]
            assert pool.restarts == 1

    def test_broken_pool_detected_at_submit_time(self, key16, tmp_path):
        payload = bytes(64)
        with EncryptionPool(1, key=key16) as pool:
            _kill_pool(pool)
            # The executor is already poisoned before this batch starts.
            jobs = [(key16, payload, nonce, None, "fast")
                    for nonce in (0x1111, 0x2222)]
            packets = pool.run_jobs(encrypt_job, jobs)
            assert pool.restarts == 1
            from repro.core.stream import encrypt_packet
            assert packets == [
                encrypt_packet(payload, key16, nonce=0x1111, engine="fast"),
                encrypt_packet(payload, key16, nonce=0x2222, engine="fast"),
            ]

    def test_inline_fallback_when_restarts_exhausted(self):
        parent = os.getpid()
        with EncryptionPool(1) as pool:
            results = pool.run_jobs(_crash_unless_parent, [(parent,)])
            assert results == ["inline"]
            assert pool.restarts == 1  # budget spent, then inline

    def test_restart_counter_starts_at_zero(self):
        with EncryptionPool(1) as pool:
            assert pool.restarts == 0
            assert pool.workers == 1

    def test_closed_pool_refuses_work(self):
        pool = EncryptionPool(1)
        pool.close()
        with pytest.raises(RuntimeError):
            _ = pool.executor
        pool.close()  # idempotent

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            EncryptionPool(0)


class TestCodecRecovery:
    def test_blob_correct_after_worker_death(self, key16):
        payload = bytes(i % 251 for i in range(5000))
        inline = ParallelCodec(key16, chunk_size=1024)
        expected = inline.encrypt_blob(payload)
        with ParallelCodec(key16, workers=1, chunk_size=1024) as codec:
            assert codec.pool is None  # lazy: no pool before first blob
            assert codec.encrypt_blob(payload) == expected
            _kill_pool(codec.pool)
            assert codec.encrypt_blob(payload) == expected
            assert codec.pool.restarts == 1
            # The rebuilt pool keeps serving subsequent batches.
            assert codec.decrypt_blob(expected) == payload
            assert codec.pool.restarts == 1


class TestAsyncRecovery:
    def test_run_async_rebuilds_broken_pool(self, key16):
        import asyncio

        from repro.core.stream import encrypt_packet

        async def scenario() -> bytes:
            with EncryptionPool(1, key=key16) as pool:
                _kill_pool(pool)
                packet = await pool.run_async(
                    encrypt_job, key16, b"async payload", 0x1234, None,
                    "fast")
                assert pool.restarts >= 1
                return packet

        packet = asyncio.run(scenario())
        assert packet == encrypt_packet(b"async payload", key16,
                                        nonce=0x1234, engine="fast")
