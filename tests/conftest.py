"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams


@pytest.fixture
def paper_params() -> VectorParams:
    """The paper's 16-bit configuration."""
    return PAPER_PARAMS


@pytest.fixture
def key16() -> Key:
    """A deterministic full 16-pair key schedule."""
    return Key.generate(seed=2005, n_pairs=16)


@pytest.fixture
def key4() -> Key:
    """A short 4-pair key schedule (exercises round-robin wrap)."""
    return Key.generate(seed=7, n_pairs=4)


@pytest.fixture
def fig8_key() -> Key:
    """The single pair (0, 3) of the paper's Fig. 8 worked example."""
    return Key([(0, 3)])
