"""Shared fixtures for the observability suite.

Every test runs with the process-wide registry restored afterwards —
obs state is global by design, and a leaked enabled registry would make
unrelated suites start recording.
"""

from __future__ import annotations

import pytest

from repro.obs import core as obs
from repro.obs.logs import reset_logging


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _restore_obs_state():
    previous = obs.get_registry()
    yield
    obs.set_registry(previous if previous.enabled else None)
    reset_logging()


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def registry(clock) -> obs.ObsRegistry:
    """A live registry on the fake clock, installed process-wide."""
    registry = obs.ObsRegistry(clock=clock)
    obs.set_registry(registry)
    return registry
