"""Instrument math and registry semantics (clock-injected, deterministic)."""

import pytest

from repro.obs import core as obs
from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NULL_INSTRUMENT,
    ObsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("repro_things_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increments(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3
        gauge.dec(10)
        assert gauge.value == -7  # unlike counters, gauges may go down


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bounds(self):
        histogram = Histogram("repro_lat_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.001, 0.005, 0.05, 0.5):
            histogram.observe(value)
        # 0.001 lands in its own (inclusive) bucket, 0.5 in +Inf.
        assert histogram.bucket_counts == (2, 1, 1, 1)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.5565)

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram("repro_lat_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            histogram.observe(value)
        # rank(0.5) = 2 -> second bucket (0.001, 0.01], full fraction.
        assert histogram.quantile(0.5) == pytest.approx(0.01)
        # rank(0.25) = 1 -> first bucket, interpolated from 0.
        assert histogram.quantile(0.25) == pytest.approx(0.001)

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("repro_lat_seconds").quantile(0.99) == 0.0

    def test_quantile_beyond_last_bound_reports_the_bound(self):
        histogram = Histogram("repro_lat_seconds", buckets=(0.001, 0.01))
        histogram.observe(99.0)  # +Inf bucket
        assert histogram.quantile(0.5) == 0.01

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("repro_lat_seconds").quantile(1.5)

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("repro_lat_seconds", buckets=(0.1, 0.1))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("repro_lat_seconds", buckets=())

    def test_default_buckets_cover_cipher_to_pool_scale(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(5.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_same_name_and_labels_is_the_same_instrument(self, registry):
        one = registry.counter("repro_x_total", op="encrypt")
        two = registry.counter("repro_x_total", op="encrypt")
        other = registry.counter("repro_x_total", op="decrypt")
        assert one is two
        assert one is not other

    def test_label_order_is_irrelevant(self, registry):
        assert (registry.counter("repro_x_total", a="1", b="2")
                is registry.counter("repro_x_total", b="2", a="1"))

    def test_kind_conflict_raises(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("repro_x_total", op="other-labels-too")

    def test_invalid_names_and_labels_rejected(self, registry):
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("repro bad name")
        with pytest.raises(ValueError, match="label name"):
            registry.counter("repro_ok_total", **{"bad-label": "x"})

    def test_time_block_uses_the_injected_clock(self, registry, clock):
        with registry.time_block("repro_op_seconds") as timer:
            clock.advance(0.25)
        assert timer.duration == pytest.approx(0.25)
        histogram = registry.histogram("repro_op_seconds")
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(0.25)

    def test_snapshot_keys_and_histogram_stats(self, registry, clock):
        registry.counter("repro_ops_total", op="encrypt").inc(3)
        registry.gauge("repro_active").set(2)
        with registry.time_block("repro_op_seconds"):
            clock.advance(0.02)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"repro_ops_total{op=encrypt}": 3}
        assert snap["gauges"] == {"repro_active": 2}
        stats = snap["histograms"]["repro_op_seconds"]
        assert stats["count"] == 1
        assert stats["sum"] == pytest.approx(0.02)
        assert 0.0 < stats["p50"] <= 0.025

    def test_snapshot_is_json_able(self, registry):
        import json

        registry.counter("repro_ops_total").inc()
        registry.histogram("repro_lat_seconds").observe(0.01)
        json.dumps(registry.snapshot())  # must not raise

    def test_reset_drops_instruments(self, registry):
        registry.counter("repro_ops_total").inc(7)
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        # Recreated fresh after reset.
        assert registry.counter("repro_ops_total").value == 0

    def test_render_lists_every_series(self, registry):
        registry.counter("repro_ops_total", op="encrypt").inc(5)
        registry.histogram("repro_lat_seconds").observe(0.003)
        text = registry.render()
        assert "repro_ops_total{op=encrypt}" in text
        assert "repro_lat_seconds" in text
        assert "n=1" in text

    def test_render_empty_registry(self, registry):
        assert registry.render() == "obs: no instruments recorded"


class TestGlobalRegistry:
    def test_enable_disable_round_trip(self):
        obs.set_registry(None)
        assert not obs.is_enabled()
        live = obs.enable()
        assert obs.is_enabled()
        assert obs.get_registry() is live
        assert obs.enable() is live  # idempotent without an argument
        obs.disable()
        assert not obs.is_enabled()
        assert obs.get_registry().counter("repro_x_total") is NULL_INSTRUMENT

    def test_set_registry_returns_previous(self):
        first = ObsRegistry()
        previous = obs.set_registry(first)
        try:
            second = ObsRegistry()
            assert obs.set_registry(second) is first
            assert obs.get_registry() is second
        finally:
            obs.set_registry(previous if previous.enabled else None)

    def test_module_conveniences_hit_the_current_registry(self, registry):
        obs.counter("repro_mod_total").inc(2)
        obs.gauge("repro_mod_level").set(1)
        obs.histogram("repro_mod_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["repro_mod_total"] == 2
        assert snap["gauges"]["repro_mod_level"] == 1
        assert snap["histograms"]["repro_mod_seconds"]["count"] == 1
