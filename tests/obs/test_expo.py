"""Prometheus text exposition golden tests (format 0.0.4)."""

from repro.obs import core as obs


def test_prometheus_golden(registry, clock):
    registry.counter("repro_ops_total",
                     help="Operations by kind.", op="encrypt").inc(3)
    registry.counter("repro_ops_total", op="decrypt").inc(1)
    registry.gauge("repro_active", help="Live links.").set(2)
    histogram = registry.histogram("repro_lat_seconds",
                                   help="Latency.",
                                   buckets=(0.001, 0.01, 0.1))
    histogram.observe(0.0005)
    histogram.observe(0.05)
    histogram.observe(9.0)

    assert registry.render_prometheus() == (
        "# HELP repro_active Live links.\n"
        "# TYPE repro_active gauge\n"
        "repro_active 2\n"
        "# HELP repro_lat_seconds Latency.\n"
        "# TYPE repro_lat_seconds histogram\n"
        'repro_lat_seconds_bucket{le="0.001"} 1\n'
        'repro_lat_seconds_bucket{le="0.01"} 1\n'
        'repro_lat_seconds_bucket{le="0.1"} 2\n'
        'repro_lat_seconds_bucket{le="+Inf"} 3\n'
        "repro_lat_seconds_sum 9.0505\n"
        "repro_lat_seconds_count 3\n"
        "# HELP repro_ops_total Operations by kind.\n"
        "# TYPE repro_ops_total counter\n"
        'repro_ops_total{op="decrypt"} 1\n'
        'repro_ops_total{op="encrypt"} 3\n'
    )


def test_label_values_are_escaped(registry):
    registry.counter("repro_err_total", kind='say "hi"\nback\\slash').inc()
    text = registry.render_prometheus()
    assert r'kind="say \"hi\"\nback\\slash"' in text


def test_empty_registry_renders_a_bare_newline(registry):
    assert registry.render_prometheus() == "\n"


def test_disabled_registry_renders_a_marker():
    previous = obs.set_registry(None)
    try:
        text = obs.get_registry().render_prometheus()
        assert text.startswith("#")
        assert "disabled" in text
    finally:
        obs.set_registry(previous if previous.enabled else None)
