"""Structured JSON-lines logging: round-trip, hierarchy, default silence."""

import io
import json
import logging

from repro.obs.logs import (
    ROOT_LOGGER,
    configure_logging,
    log_event,
    reset_logging,
)


def test_default_tree_is_silent():
    # Library rule: a NullHandler on "repro", no propagation surprises.
    logger = logging.getLogger(ROOT_LOGGER)
    assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)


def test_json_lines_round_trip():
    stream = io.StringIO()
    configure_logging(stream)
    try:
        log_event("repro.link", "link.drop", level=logging.WARNING,
                  reason="replay", seq=17)
        log_event("repro.net.server", "server.accept", peer="peer-0")
    finally:
        reset_logging()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["level"] == "WARNING"
    assert first["logger"] == "repro.link"
    assert first["event"] == "link.drop"
    assert first["reason"] == "replay"
    assert first["seq"] == 17
    assert isinstance(first["ts"], float)
    second = json.loads(lines[1])
    assert second["event"] == "server.accept"
    assert second["peer"] == "peer-0"


def test_field_keys_are_sorted_after_the_header():
    stream = io.StringIO()
    configure_logging(stream)
    try:
        log_event("repro.test", "evt", zebra=1, alpha=2)
    finally:
        reset_logging()
    keys = list(json.loads(stream.getvalue()).keys())
    assert keys == ["ts", "level", "logger", "event", "alpha", "zebra"]


def test_level_gate_drops_cheaply():
    stream = io.StringIO()
    configure_logging(stream, level=logging.WARNING)
    try:
        log_event("repro.trace", "span.end", level=logging.DEBUG, span="x")
        log_event("repro.trace", "span.fail", level=logging.WARNING, span="x")
    finally:
        reset_logging()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "span.fail"


def test_non_json_values_fall_back_to_str():
    stream = io.StringIO()
    configure_logging(stream)
    try:
        log_event("repro.test", "evt", payload=b"\x00\x01")
    finally:
        reset_logging()
    record = json.loads(stream.getvalue())
    assert record["payload"] == str(b"\x00\x01")


def test_reset_logging_detaches_everything():
    stream = io.StringIO()
    configure_logging(stream)
    reset_logging()
    log_event("repro.test", "evt.after.reset")
    assert stream.getvalue() == ""
    logger = logging.getLogger(ROOT_LOGGER)
    assert all(isinstance(h, logging.NullHandler) for h in logger.handlers)
