"""The /metrics + /healthz HTTP endpoint, scraped over real sockets."""

import asyncio
import json

import pytest

from repro.net import SecureLinkClient, SecureLinkServer
from repro.obs import core as obs
from repro.obs.http import MetricsEndpoint, http_get

SID = b"obs-sid\x00"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


def _get(host, port, path="/metrics"):
    """http_get off the event-loop thread (it blocks on the socket)."""
    return asyncio.to_thread(http_get, host, port, path)


def _populate_via_memory_link(key):
    """Drive a memory-transport echo so the registry holds link series."""
    from repro.link.memory import MemoryLinkServer

    with MemoryLinkServer(key) as server:
        with server.connect(session_id=SID) as client:
            payloads = [bytes([i]) * 64 for i in range(8)]
            assert client.send_all(payloads) == payloads


class TestStandaloneEndpoint:
    def test_metrics_text_from_a_populated_registry(self, registry, key16):
        _populate_via_memory_link(key16)

        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port)
                assert status == 200
                # The catalogue the ISSUE promises a scraper can curl:
                assert "repro_link_handshake_seconds_bucket" in text
                assert "repro_link_handshake_seconds_count" in text
                assert 'repro_engine_ops_total{engine="' in text
                assert 'op="encrypt"' in text and 'op="decrypt"' in text
                assert "repro_link_drops_total" in text
                assert "# TYPE repro_link_handshake_seconds histogram" in text
        run(body())

    def test_metrics_json_snapshot(self, registry, key16):
        _populate_via_memory_link(key16)

        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port,
                                          "/metrics.json")
                assert status == 200
                snap = json.loads(text)
                assert snap["enabled"] is True
                # Both ends of the memory pair time their handshake.
                assert snap["histograms"]["repro_link_handshake_seconds"][
                    "count"] == 2
        run(body())

    def test_default_healthz(self):
        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port,
                                          "/healthz")
                assert status == 200
                assert json.loads(text) == {"status": "ok"}
        run(body())

    def test_custom_health_callable(self):
        async def body():
            health = lambda: {"status": "degraded", "queue": 7}  # noqa: E731
            async with MetricsEndpoint(port=0, health=health) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port,
                                          "/healthz")
                assert status == 200
                assert json.loads(text) == {"queue": 7, "status": "degraded"}
        run(body())

    def test_unknown_route_is_404(self):
        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port, "/nope")
                assert status == 404
                assert "/nope" in text
        run(body())

    def test_non_get_is_405(self):
        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", endpoint.port)
                writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read(65536)
                writer.close()
                await writer.wait_closed()
                assert b"405" in raw.split(b"\r\n", 1)[0]
        run(body())

    def test_endpoint_started_disabled_picks_up_enable(self):
        # registry=None resolves the process registry per request.
        obs.set_registry(None)

        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                status, text = await _get("127.0.0.1", endpoint.port)
                assert "disabled" in text
                live = obs.enable()
                live.counter("repro_late_total").inc(3)
                status, text = await _get("127.0.0.1", endpoint.port)
                assert status == 200
                assert "repro_late_total 3" in text
        run(body())

    def test_double_start_rejected(self):
        async def body():
            async with MetricsEndpoint(port=0) as endpoint:
                with pytest.raises(RuntimeError, match="already started"):
                    await endpoint.start()
        run(body())


class TestServerEndpoint:
    """SecureLinkServer(metrics_port=...) over a real TCP round trip."""

    def test_metrics_and_healthz_during_service(self, registry, key16):
        async def body():
            async with SecureLinkServer(key16, port=0,
                                        metrics_port=0) as server:
                assert server.metrics_endpoint is not None
                mport = server.metrics_endpoint.port
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    assert await client.request(b"observe me") == b"observe me"
                    status, text = await _get("127.0.0.1", mport)
                    assert status == 200
                    assert "repro_server_accepts_total 1" in text
                    assert "repro_link_handshake_seconds_count" in text
                    assert 'repro_session_packets_total{direction="rx"}' in text
                    status, health = await _get("127.0.0.1", mport, "/healthz")
                    assert status == 200
                    doc = json.loads(health)
                    assert doc["status"] == "ok"
                    assert doc["active_links"] == 1
                    assert doc["sessions"] == 1
                    assert doc["errors"] == 0
        run(body())

    def test_endpoint_closes_with_the_server(self, registry, key16):
        async def body():
            server = SecureLinkServer(key16, port=0, metrics_port=0)
            await server.start()
            mport = server.metrics_endpoint.port
            await server.close()
            assert server.metrics_endpoint is None
            with pytest.raises(OSError):
                await _get("127.0.0.1", mport)
        run(body())

    def test_no_metrics_port_means_no_endpoint(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                assert server.metrics_endpoint is None
        run(body())
