"""Disabled-mode no-ops and the byte-identical-wire differential gate."""

from repro.api import open_codec
from repro.link import LinkProtocol
from repro.obs import core as obs
from repro.obs.core import NULL_INSTRUMENT, NullRegistry

SID = b"diffsid\x00"


class TestNullRegistry:
    def test_every_accessor_returns_the_shared_singleton(self):
        registry = NullRegistry()
        assert registry.counter("repro_x_total", op="a") is NULL_INSTRUMENT
        assert registry.gauge("repro_y") is NULL_INSTRUMENT
        assert registry.histogram("repro_z_seconds") is NULL_INSTRUMENT
        assert registry.time_block("repro_z_seconds") is NULL_INSTRUMENT
        assert registry.span("anything") is NULL_INSTRUMENT
        assert registry.enabled is False

    def test_null_instrument_absorbs_every_method(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.inc(100)
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(1.0)
        assert NULL_INSTRUMENT.value == 0
        assert NULL_INSTRUMENT.count == 0
        assert NULL_INSTRUMENT.quantile(0.99) == 0.0
        with NULL_INSTRUMENT as timer:
            assert timer is NULL_INSTRUMENT

    def test_null_snapshot_and_renders(self):
        registry = NullRegistry()
        assert registry.snapshot()["enabled"] is False
        assert registry.render() == "obs: disabled"
        registry.reset()  # no-op, must not raise

    def test_disabled_workload_records_nothing(self, key16):
        previous = obs.set_registry(None)
        try:
            with open_codec(key16) as codec:
                codec.decrypt(codec.encrypt(b"silent", nonce=7))
            assert obs.get_registry().snapshot()["counters"] == {}
        finally:
            obs.set_registry(previous if previous.enabled else None)


def _link_wire(key) -> bytes:
    """Every byte both ends of a fixed link conversation put on the wire."""
    initiator = LinkProtocol(key, "initiator", session_id=SID)
    responder = LinkProtocol(key, "responder")
    wire = []

    def pump(sender, receiver):
        chunk = sender.data_to_send()
        wire.append(chunk)
        receiver.receive_data(chunk)

    pump(initiator, responder)  # hello
    pump(responder, initiator)  # hello reply
    for i in range(5):
        initiator.send_payload(bytes([i]) * 100)
        pump(initiator, responder)
        responder.send_payload(b"reply" + bytes([i]))
        pump(responder, initiator)
    return b"".join(wire)


def _codec_wire(key) -> bytes:
    with open_codec(key) as codec:
        packet = codec.encrypt(b"differential payload", nonce=0xACE1)
        blob = codec.seal_blob(bytes(range(256)) * 16, 0xBEEF)
    return packet + blob


class TestWireByteIdentity:
    """Observability must never touch the data path.

    The same deterministic workload runs once under the null registry
    and once fully instrumented; any wire-byte difference fails the
    build.
    """

    def test_link_conversation_is_byte_identical(self, key16):
        previous = obs.set_registry(None)
        try:
            disabled = _link_wire(key16)
            obs.set_registry(obs.ObsRegistry())
            enabled = _link_wire(key16)
            # The instrumented run really recorded link traffic...
            snap = obs.get_registry().snapshot()
            assert snap["counters"]["repro_link_frames_total{direction=rx}"] > 0
        finally:
            obs.set_registry(previous if previous.enabled else None)
        # ...without perturbing a single wire byte.
        assert disabled == enabled

    def test_codec_output_is_byte_identical(self, key16):
        previous = obs.set_registry(None)
        try:
            disabled = _codec_wire(key16)
            obs.set_registry(obs.ObsRegistry())
            enabled = _codec_wire(key16)
            snap = obs.get_registry().snapshot()
            assert snap["counters"]["repro_codec_ops_total{op=encrypt}"] == 1
        finally:
            obs.set_registry(previous if previous.enabled else None)
        assert disabled == enabled
