"""Span tracing: nesting, timing via the injected clock, disabled mode."""

from repro.obs import core as obs
from repro.obs.core import NULL_INSTRUMENT
from repro.obs.trace import Span, current_span, span


def test_span_times_with_the_registry_clock(registry, clock):
    with span("link.handshake") as hs:
        clock.advance(0.125)
    assert hs.duration == 0.125
    histogram = registry.histogram("repro_span_seconds", span="link.handshake")
    assert histogram.count == 1
    assert histogram.sum == 0.125


def test_spans_nest_lexically(registry, clock):
    with span("server.connection") as outer:
        assert current_span() is outer
        with span("link.handshake") as inner:
            assert inner.parent is outer
            assert inner.depth == 1
            assert current_span() is inner
            clock.advance(0.01)
        assert current_span() is outer
    assert outer.parent is None
    assert outer.depth == 0
    assert inner.path == "server.connection.link.handshake"
    assert current_span() is None


def test_each_span_name_is_its_own_series(registry, clock):
    with span("a"):
        clock.advance(0.001)
    with span("b"):
        clock.advance(0.002)
    snap = registry.snapshot()["histograms"]
    assert snap["repro_span_seconds{span=a}"]["count"] == 1
    assert snap["repro_span_seconds{span=b}"]["count"] == 1


def test_span_survives_exceptions(registry, clock):
    try:
        with span("failing.op"):
            clock.advance(0.5)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert current_span() is None  # stack popped despite the raise
    assert registry.histogram("repro_span_seconds",
                              span="failing.op").count == 1


def test_disabled_span_is_the_null_singleton():
    previous = obs.set_registry(None)
    try:
        cm = span("anything")
        assert cm is NULL_INSTRUMENT
        with cm as inner:
            assert inner is NULL_INSTRUMENT
        assert current_span() is None  # no stack pushes when disabled
    finally:
        obs.set_registry(previous if previous.enabled else None)


def test_registry_span_binds_that_registry(clock):
    registry = obs.ObsRegistry(clock=clock)  # NOT installed process-wide
    with registry.span("bound") as bound:
        assert isinstance(bound, Span)
        clock.advance(0.25)
    assert bound.duration == 0.25
    assert registry.histogram("repro_span_seconds", span="bound").count == 1
