"""Tests for cover-data steganography."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import CoverExhaustedError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS
from repro.stego.cover import (
    CoverVectorSource,
    cover_capacity_bits,
    embed_in_cover,
    extract_from_cover,
    mean_distortion,
)
from repro.util.rng import random_bytes


class TestCoverVectorSource:
    def test_words_little_endian(self):
        source = CoverVectorSource(b"\x34\x12\xcd\xab", 16)
        assert source.next_word() == 0x1234
        assert source.next_word() == 0xABCD

    def test_accounting(self):
        source = CoverVectorSource(b"\x00" * 10, 16)
        assert source.words_available() == 5
        source.next_word()
        assert source.words_available() == 4
        assert source.words_consumed() == 1

    def test_exhaustion(self):
        source = CoverVectorSource(b"\x00\x00", 16)
        source.next_word()
        with pytest.raises(CoverExhaustedError):
            source.next_word()

    def test_empty_cover_rejected(self):
        with pytest.raises(CoverExhaustedError):
            CoverVectorSource(b"", 16)

    def test_non_byte_width_rejected(self):
        with pytest.raises(ValueError):
            CoverVectorSource(b"abcd", 12)


class TestEmbedExtract:
    def test_roundtrip(self, key16):
        cover = random_bytes(5, 4096)
        stego = embed_in_cover(b"meet at midnight", cover, key16)
        assert extract_from_cover(stego, key16) == b"meet at midnight"

    @given(st.binary(min_size=1, max_size=24), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, message, cover_seed):
        key = Key.generate(seed=77)
        cover = random_bytes(cover_seed, len(message) * 8 * 4 + 64)
        stego = embed_in_cover(message, cover, key)
        assert extract_from_cover(stego, key) == message

    def test_unused_cover_tail_untouched(self, key16):
        cover = random_bytes(6, 2048)
        stego = embed_in_cover(b"tiny", cover, key16)
        used = stego.n_vectors * 2
        assert stego.data[used:] == cover[used:]
        assert len(stego.data) == len(cover)

    def test_cover_exhaustion_raises(self, key16):
        cover = random_bytes(7, 16)  # 8 vectors: far too small
        with pytest.raises(CoverExhaustedError):
            embed_in_cover(b"a much longer message than fits", cover, key16)

    def test_capacity_floor_guarantee(self, key16):
        cover = random_bytes(8, 1024)
        floor = cover_capacity_bits(cover, key16)
        message = bytes(floor // 8 // 2)  # half the floor, in whole bytes
        stego = embed_in_cover(message, cover, key16)  # must not raise
        assert stego.n_vectors <= floor

    def test_capacity_floor_is_exact(self, key16):
        """A message of exactly the floor always fits; one byte over
        the per-word ceiling never does."""
        cover = random_bytes(20, 256)  # 128 words of 16 bits
        floor = cover_capacity_bits(cover, key16)
        assert floor == 128
        stego = embed_in_cover(bytes(floor // 8), cover, key16)  # no raise
        assert extract_from_cover(stego, key16) == bytes(floor // 8)
        # Each word carries at most width//2 = 8 bits, so one byte past
        # words*8 bits cannot fit whatever the key says.
        with pytest.raises(CoverExhaustedError):
            embed_in_cover(bytes(floor + 1), cover, key16)

    def test_exhaustion_boundary_at_exact_consumption(self, key16):
        """Sharpest boundary: a cover trimmed to the vectors actually
        consumed still embeds; one word less raises."""
        message = b"boundary probe"
        cover = random_bytes(21, 4096)
        used = embed_in_cover(message, cover, key16).n_vectors
        exact = cover[: used * 2]
        again = embed_in_cover(message, exact, key16)
        assert again.n_vectors == used
        assert extract_from_cover(again, key16) == message
        with pytest.raises(CoverExhaustedError):
            embed_in_cover(message, cover[: (used - 1) * 2], key16)

    def test_exhaustion_leaves_no_partial_stego(self, key16):
        """The exhaustion error carries the consumed-vector count and
        the failed embed never returns a half-built object."""
        cover = random_bytes(22, 32)  # 16 words
        with pytest.raises(CoverExhaustedError, match="vectors"):
            embed_in_cover(bytes(64), cover, key16)

    def test_width_mismatch_on_extract(self, key16):
        cover = random_bytes(9, 512)
        stego = embed_in_cover(b"x", cover, key16)
        from repro.core.params import VectorParams

        with pytest.raises(ValueError):
            extract_from_cover(stego, key16, VectorParams(32))


class TestDistortion:
    def test_bounded_by_max_window(self, key16):
        cover = random_bytes(10, 4096)
        stego = embed_in_cover(b"bounded distortion test", cover, key16)
        distortion = mean_distortion(cover, stego)
        assert 0.0 < distortion <= PAPER_PARAMS.max_window

    def test_scramble_half_of_each_word_untouched(self, key16):
        cover = random_bytes(11, 2048)
        stego = embed_in_cover(b"upper byte intact", cover, key16)
        for offset in range(0, stego.n_vectors * 2, 2):
            assert stego.data[offset + 1] == cover[offset + 1]

    def test_empty_message_distortion_zero(self, key16):
        cover = random_bytes(12, 256)
        stego = embed_in_cover(b"", cover, key16)
        assert mean_distortion(cover, stego) == 0.0
        assert stego.data == cover
