"""Tests for the STS-style keyed shuffler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stego.shuffler import Shuffler


class TestRoundTrip:
    @given(st.lists(st.integers(), max_size=100), st.integers(1, 0xFFFF),
           st.integers(2, 32))
    @settings(max_examples=30, deadline=None)
    def test_unshuffle_inverts(self, items, seed, block):
        shuffler = Shuffler(key_seed=seed, block=block)
        assert shuffler.unshuffle(shuffler.shuffle(items)) == items

    def test_preserves_multiset(self):
        shuffler = Shuffler(key_seed=0x1357)
        items = list(range(64))
        assert sorted(shuffler.shuffle(items)) == items

    def test_actually_permutes(self):
        shuffler = Shuffler(key_seed=0x1357)
        items = list(range(64))
        assert shuffler.shuffle(items) != items

    def test_different_keys_differ(self):
        items = list(range(64))
        a = Shuffler(key_seed=1).shuffle(items)
        b = Shuffler(key_seed=2).shuffle(items)
        assert a != b

    def test_deterministic(self):
        items = list(range(32))
        assert Shuffler(key_seed=5).shuffle(items) == \
            Shuffler(key_seed=5).shuffle(items)


class TestValidation:
    def test_zero_key_rejected(self):
        with pytest.raises(ValueError):
            Shuffler(key_seed=0)

    def test_tiny_block_rejected(self):
        with pytest.raises(ValueError):
            Shuffler(key_seed=1, block=1)

    def test_blockwise_locality(self):
        """Elements never leave their block — streaming compatibility."""
        shuffler = Shuffler(key_seed=9, block=8)
        items = list(range(32))
        shuffled = shuffler.shuffle(items)
        for block_index in range(4):
            chunk = shuffled[block_index * 8 : (block_index + 1) * 8]
            assert sorted(chunk) == items[block_index * 8 : (block_index + 1) * 8]


class TestWithCipherVectors:
    def test_shuffled_link(self, key16):
        """Stego vectors survive a shuffle/unshuffle link hop."""
        from repro.core.mhhea import MhheaCipher

        cipher = MhheaCipher(key16)
        message = cipher.encrypt(b"shuffled-type steganography", seed=77)
        shuffler = Shuffler(key_seed=0xBEE)
        wire = shuffler.shuffle(list(message.vectors))
        restored = shuffler.unshuffle(wire)
        from repro.core.mhhea import EncryptedMessage

        assert cipher.decrypt(
            EncryptedMessage(tuple(restored), message.n_bits, message.width)
        ) == b"shuffled-type steganography"
