"""Tests for the workload generators."""

import pytest

from repro.analysis.workloads import (
    ascii_text,
    bits_of_text,
    constant_bits,
    message_bits,
    packet_payloads,
)


class TestMessageBits:
    def test_length_and_values(self):
        bits = message_bits(100, seed=1)
        assert len(bits) == 100
        assert set(bits) <= {0, 1}

    def test_deterministic(self):
        assert message_bits(64, seed=9) == message_bits(64, seed=9)

    def test_seed_sensitivity(self):
        assert message_bits(64, seed=1) != message_bits(64, seed=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            message_bits(-1)


class TestAsciiText:
    def test_exact_length(self):
        assert len(ascii_text(57, seed=2)) == 57

    def test_is_ascii(self):
        ascii_text(100, seed=3).decode("ascii")

    def test_bits_of_text(self):
        assert len(bits_of_text(10, seed=1)) == 80


class TestConstantBits:
    def test_zeroes_and_ones(self):
        assert constant_bits(5) == [0] * 5
        assert constant_bits(5, value=1) == [1] * 5

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            constant_bits(5, value=2)


class TestPacketPayloads:
    def test_count(self):
        assert len(packet_payloads(7, seed=1)) == 7

    def test_imix_sizes(self):
        sizes = {len(p) for p in packet_payloads(60, seed=4)}
        assert sizes <= {40, 576, 1500}
        assert 40 in sizes

    def test_deterministic(self):
        assert packet_payloads(5, seed=8) == packet_payloads(5, seed=8)
