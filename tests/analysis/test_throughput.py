"""Tests for the throughput accountings."""

import pytest

from repro.analysis.throughput import (
    Accounting,
    expected_raw_window,
    expected_scrambled_window,
    measured_bits_per_cycle,
    paper_table1_throughput,
    throughput_mbps,
)
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder
from repro.rtl.cycle_model import CycleModelRun, MhheaCycleModel


class TestPaperFormula:
    def test_reproduces_table1_exactly(self):
        """23.883 MHz x 8 bits / 2 cycles = 95.532 Mbps — Table 1."""
        assert paper_table1_throughput(23.883) == pytest.approx(95.532)

    def test_scales_with_fmax(self):
        assert paper_table1_throughput(10.0) == pytest.approx(40.0)

    def test_throughput_rejects_negative(self):
        with pytest.raises(ValueError):
            throughput_mbps(-1, 2)


class TestExpectedWindows:
    def test_raw_expectation_is_3_625(self):
        assert float(expected_raw_window()) == pytest.approx(3.625)

    def test_scrambled_expectation_close_to_raw(self):
        value = float(expected_scrambled_window())
        assert 3.0 < value < 4.2

    def test_scrambled_matches_monte_carlo(self, key16):
        """The exact enumeration must agree with simulating the cipher."""
        from repro.core import mhhea
        from repro.util.lfsr import Lfsr

        trace = TraceRecorder()
        bits = [1] * 6000
        mhhea.encrypt_bits(bits, key16, Lfsr(16, seed=0x5A5A), trace=trace)
        simulated = trace.mean_window()
        exact = float(expected_scrambled_window(key=key16))
        assert simulated == pytest.approx(exact, rel=0.05)

    def test_key_specific_expectation(self):
        narrow = Key([(3, 3)])
        assert float(expected_scrambled_window(key=narrow)) == pytest.approx(1.0)

    def test_width_sweep_expectations_grow(self):
        e16 = float(expected_scrambled_window(VectorParams(16)))
        e32 = float(expected_scrambled_window(VectorParams(32)))
        assert e32 > e16


class TestMeasured:
    def test_measured_bits_per_cycle(self, key16):
        run = MhheaCycleModel(key16).run([1] * 256)
        rate = measured_bits_per_cycle(run)
        assert rate == pytest.approx(256 / run.total_cycles)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            measured_bits_per_cycle(CycleModelRun())

    def test_accounting_enum_values(self):
        assert Accounting("paper-max-window") is Accounting.PAPER_MAX_WINDOW
        assert Accounting("measured") is Accounting.MEASURED
