"""End-to-end Table 1 builder tests (slow: runs the CAD flow 3x)."""

import pytest

from repro.analysis.table1 import build_table1
from repro.analysis.throughput import Accounting


@pytest.fixture(scope="module")
def table1():
    return build_table1(Accounting.PAPER_MAX_WINDOW, effort=0.15, seed=3)


class TestTable1:
    def test_has_all_rows(self, table1):
        names = [row.name for row in table1.rows]
        assert names.count("MHHEA") == 2  # literature + measured
        assert "YAEA" in names and "YAEA-like" in names

    def test_measured_mhhea_beats_measured_hhea(self, table1):
        """The paper's core comparison claim, on our measurements."""
        measured = {row.name: row for row in table1.measured}
        assert measured["MHHEA"].density > measured["HHEA"].density

    def test_measured_mhhea_density_in_paper_band(self, table1):
        measured = {row.name: row for row in table1.measured}
        # paper reports 0.569 Mbps/CLB; same order of magnitude required
        assert 0.1 <= measured["MHHEA"].density <= 2.0

    def test_stream_design_has_highest_density(self, table1):
        measured = {row.name: row for row in table1.measured}
        assert measured["YAEA-like"].density > measured["MHHEA"].density

    def test_render_and_chart(self, table1):
        text = table1.render()
        assert "Table 1" in text
        assert "literature" in text and "measured" in text
        chart = table1.chart()
        assert "#" in chart

    def test_flows_cached_on_result(self, table1):
        assert set(table1.flows) == {"MHHEA", "HHEA", "YAEA-like"}
