"""Tests for functional density, the chart, and the literature rows."""

import pytest

from repro.analysis.density import (
    ComparisonRow,
    functional_density,
    render_chart,
    render_table,
)
from repro.analysis.literature import LITERATURE_TABLE1, PAPER_REPORTS


class TestFunctionalDensity:
    def test_definition(self):
        assert functional_density(95.532, 168) == pytest.approx(0.5686, abs=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            functional_density(1.0, 0)
        with pytest.raises(ValueError):
            functional_density(-1.0, 10)


class TestLiteratureRows:
    def test_table1_values_verbatim(self):
        by_name = {e.name: e for e in LITERATURE_TABLE1}
        assert by_name["YAEA"].throughput_mbps == 129.1
        assert by_name["YAEA"].area_clb == 149
        assert by_name["HHEA"].throughput_mbps == 15.8
        assert by_name["MHHEA"].throughput_mbps == 95.532
        assert by_name["MHHEA"].area_clb == 168

    def test_densities_match_paper(self):
        """The paper's own density column: 0.866 / 0.110 / 0.569."""
        by_name = {e.name: e for e in LITERATURE_TABLE1}
        assert by_name["YAEA"].density == pytest.approx(0.866, abs=1e-3)
        assert by_name["HHEA"].density == pytest.approx(0.110, abs=1e-3)
        assert by_name["MHHEA"].density == pytest.approx(0.569, abs=1e-3)

    def test_paper_report_constants(self):
        assert PAPER_REPORTS["min_period_ns"] == 41.871
        assert PAPER_REPORTS["max_frequency_mhz"] == 23.883
        assert PAPER_REPORTS["n_slices"] == 337

    def test_ordering_matches_figure9(self):
        """Fig 9's shape: YAEA > MHHEA > HHEA in functional density."""
        by_name = {e.name: e for e in LITERATURE_TABLE1}
        assert by_name["YAEA"].density > by_name["MHHEA"].density
        assert by_name["MHHEA"].density > by_name["HHEA"].density


class TestRendering:
    def _rows(self):
        return [entry.as_row() for entry in LITERATURE_TABLE1]

    def test_table_contains_all_rows(self):
        text = render_table(self._rows())
        for entry in LITERATURE_TABLE1:
            assert entry.name in text

    def test_chart_bars_scale_with_density(self):
        text = render_chart(self._rows())
        lines = {line.split()[0]: line.count("#") for line in text.splitlines()[1:]}
        assert lines["YAEA"] > lines["MHHEA"] > lines["HHEA"]

    def test_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            render_chart([])

    def test_row_density_property(self):
        row = ComparisonRow("x", 100.0, 50)
        assert row.density == pytest.approx(2.0)
