"""Tests for report rendering, the floor plan, and the end-to-end flow."""

import pytest

from repro.analysis.literature import PAPER_REPORTS
from repro.fpga.device import SPARTAN2_XC2S100
from repro.fpga.flow import run_flow
from repro.fpga.floorplan import occupancy_histogram, render_floorplan
from repro.fpga.reports import (
    DesignSummary,
    GATES_PER_FF,
    GATES_PER_LUT,
    GATES_PER_TBUF,
    TimingSummary,
)
from repro.rtl.yaea_top import build_yaea_top


@pytest.fixture(scope="module")
def yaea_flow():
    """A small, fast full-flow run shared by the report tests."""
    return run_flow(build_yaea_top().circuit, seed=3, effort=0.2)


class TestDesignSummary:
    def test_gate_convention_reproduces_paper_scale(self):
        """Feeding the paper's own LUT/FF/TBUF counts into our gate
        convention lands within 10% of its reported 5051 gates."""
        summary = DesignSummary(
            design_name="paper", device=SPARTAN2_XC2S100,
            n_slices=PAPER_REPORTS["n_slices"], n_ffs=PAPER_REPORTS["n_ffs"],
            n_luts=PAPER_REPORTS["n_luts"], n_iobs=PAPER_REPORTS["n_iobs"],
            n_tbufs=PAPER_REPORTS["n_tbufs"],
        )
        assert summary.equivalent_gates == (
            393 * GATES_PER_LUT + 205 * GATES_PER_FF + 206 * GATES_PER_TBUF
        )
        assert abs(summary.equivalent_gates - PAPER_REPORTS["equivalent_gates"]) \
            <= 0.1 * PAPER_REPORTS["equivalent_gates"]

    def test_utilisation_fractions(self, yaea_flow):
        summary = yaea_flow.summary
        assert 0 < summary.slice_utilisation < 1
        assert 0 < summary.iob_utilisation < 1
        assert summary.tbuf_utilisation == 0  # the stream design has none

    def test_render_format(self, yaea_flow):
        text = yaea_flow.summary.render()
        assert "Number of Slices" in text
        assert "4 input LUTs" in text
        assert "bonded IOBs" in text
        assert "equivalent gate count" in text
        assert "xc2s100" in text


class TestTimingSummary:
    def test_render_format(self, yaea_flow):
        text = yaea_flow.timing_report.render()
        assert "Minimum period" in text
        assert "Maximum frequency" in text
        assert "Maximum net delay" in text

    def test_fmax_infinite_guard(self):
        report = TimingSummary("x", min_period_ns=0.0,
                               max_net_delay_ns=0.0, logic_levels=0)
        assert report.max_frequency_mhz == float("inf")


class TestFloorplan:
    def test_render_dimensions(self, yaea_flow):
        text = render_floorplan(yaea_flow.placement)
        rows = [line for line in text.splitlines() if line[:3].strip().isdigit()]
        assert len(rows) == SPARTAN2_XC2S100.rows
        assert "slices placed" in text

    def test_histogram_covers_array(self, yaea_flow):
        histogram = occupancy_histogram(yaea_flow.placement)
        assert sum(histogram.values()) == SPARTAN2_XC2S100.n_clbs
        used = sum(n * count for n, count in histogram.items())
        assert used == yaea_flow.packed.n_slices


class TestFlow:
    def test_all_artifacts_present(self, yaea_flow):
        assert yaea_flow.mapping.n_luts > 0
        assert yaea_flow.packed.n_slices > 0
        assert yaea_flow.routing.total_wirelength >= 0
        assert yaea_flow.timing.min_period_ns > 0
        assert yaea_flow.summary.n_ffs == len(yaea_flow.circuit.dffs)

    def test_deterministic(self):
        a = run_flow(build_yaea_top().circuit, seed=11, effort=0.15)
        b = run_flow(build_yaea_top().circuit, seed=11, effort=0.15)
        assert a.summary == b.summary
        assert a.timing.min_period_ns == b.timing.min_period_ns

    def test_report_block_renders(self, yaea_flow):
        text = yaea_flow.render_reports()
        assert "Design Summary" in text
        assert "Timing Summary" in text
        assert "Floor plan" in text
