"""Tests for slice packing and simulated-annealing placement."""

import pytest

from repro.core.errors import FlowError
from repro.fpga.device import FpgaDevice, SPARTAN2_XC2S100
from repro.fpga.pack import pack_design
from repro.fpga.place import place_design
from repro.fpga.techmap import flowmap
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus


def counter_circuit(width=8):
    c = Circuit("counter")
    en = c.input_bus("en", 1)
    count = c.bus("count", width)
    c.register_on(count, c.increment(count), enable=en[0])
    c.set_output("count", count)
    return c


def tiny_device(rows=4, cols=4, iobs=40):
    return FpgaDevice(
        name="toy", family="toy", package="x", speed_grade="-1",
        rows=rows, cols=cols, slices_per_clb=2, luts_per_slice=2,
        ffs_per_slice=2, n_iobs=iobs, n_tbufs=16, channel_width=8,
        t_lut=1, t_clk_to_q=1, t_setup=1, t_tbuf=1, t_iob=1,
        t_net_base=1, t_net_per_hop=0.5, t_longline=2,
    )


class TestPacking:
    def test_conserves_luts_and_ffs(self):
        c = counter_circuit()
        mapping = flowmap(c)
        packed = pack_design(mapping, SPARTAN2_XC2S100)
        assert packed.n_luts == mapping.n_luts
        assert packed.n_ffs == len(c.dffs)

    def test_slice_capacity_respected(self):
        c = counter_circuit(12)
        packed = pack_design(flowmap(c), SPARTAN2_XC2S100)
        for slice_ in packed.slices:
            assert slice_.n_luts <= 2
            assert slice_.n_ffs <= 2
            assert 1 <= len(slice_.cells) <= 2

    def test_fusion_reduces_slice_count(self):
        """Counter bits fuse LUT->FF, so slices ~ width/2, not width."""
        c = counter_circuit(8)
        packed = pack_design(flowmap(c), SPARTAN2_XC2S100)
        assert packed.n_slices <= 10

    def test_clb_count_rounds_up(self):
        c = counter_circuit(2)
        packed = pack_design(flowmap(c), SPARTAN2_XC2S100)
        assert packed.n_clbs == (packed.n_slices + 1) // 2

    def test_capacity_overflow_raises(self):
        c = counter_circuit(10)
        mapping = flowmap(c)
        with pytest.raises(FlowError):
            pack_design(mapping, tiny_device(rows=1, cols=1))

    def test_iob_overflow_raises(self):
        c = counter_circuit(8)
        with pytest.raises(FlowError):
            pack_design(flowmap(c), tiny_device(iobs=3))


class TestPlacement:
    def _placed(self, seed=1):
        c = counter_circuit(8)
        packed = pack_design(flowmap(c), tiny_device(rows=6, cols=6))
        return place_design(packed, seed=seed, effort=0.2)

    def test_sites_unique_and_legal(self):
        placement = self._placed()
        device = placement.device
        sites = list(placement.slice_sites.values())
        assert len(sites) == len(set(sites))
        for row, col, slot in sites:
            assert 0 <= row < device.rows
            assert 0 <= col < device.cols
            assert 0 <= slot < device.slices_per_clb

    def test_io_on_perimeter(self):
        placement = self._placed()
        device = placement.device
        for row, col in placement.io_sites.values():
            assert (row in (-1, device.rows)) or (col in (-1, device.cols))

    def test_deterministic_for_seed(self):
        a = self._placed(seed=9)
        b = self._placed(seed=9)
        assert a.slice_sites == b.slice_sites
        assert a.cost == b.cost

    def test_cost_is_total_hpwl(self):
        placement = self._placed()
        assert placement.cost == pytest.approx(placement.total_hpwl())

    def test_nets_reference_real_terminals(self):
        placement = self._placed()
        n_slices = placement.design.n_slices
        for net in placement.nets:
            assert len(net.terminals) >= 2
            for kind, index in net.terminals:
                assert kind in ("S", "I")
                if kind == "S":
                    assert 0 <= index < n_slices

    def test_effort_validation(self):
        c = counter_circuit(4)
        packed = pack_design(flowmap(c), tiny_device())
        with pytest.raises(FlowError):
            place_design(packed, effort=0)

    def test_occupancy_totals(self):
        placement = self._placed()
        assert sum(placement.occupancy().values()) == placement.design.n_slices
