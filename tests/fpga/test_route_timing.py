"""Tests for routing and static timing analysis."""

import pytest

from repro.fpga.device import SPARTAN2_XC2S100
from repro.fpga.pack import pack_design
from repro.fpga.place import place_design
from repro.fpga.route import route_design
from repro.fpga.techmap import flowmap
from repro.fpga.timing import analyse_timing
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus


def pipeline_circuit():
    """Two register stages with an adder between them."""
    c = Circuit("pipe")
    a = c.input_bus("a", 8)
    b = c.input_bus("b", 8)
    qa = c.register(a, name="qa")
    qb = c.register(b, name="qb")
    total, _ = c.adder(qa, qb)
    q = c.register(total, name="q")
    c.set_output("q", q)
    return c


def implemented(circuit, seed=3, effort=0.2):
    packed = pack_design(flowmap(circuit), SPARTAN2_XC2S100)
    placement = place_design(packed, seed=seed, effort=effort)
    routing = route_design(placement)
    return packed, placement, routing


class TestRouting:
    def test_every_net_routed_to_every_sink(self):
        _, placement, routing = implemented(pipeline_circuit())
        assert len(routing.routed) == len(placement.nets)
        for tree in routing.routed:
            n_sinks = len(tree.net.terminals) - tree.net.n_drivers
            assert len(tree.sink_hops) == n_sinks

    def test_capacity_respected(self):
        _, _, routing = implemented(pipeline_circuit())
        assert routing.max_edge_usage <= routing.channel_width

    def test_wirelength_positive_for_spread_design(self):
        _, _, routing = implemented(pipeline_circuit())
        assert routing.total_wirelength > 0

    def test_deterministic(self):
        _, _, r1 = implemented(pipeline_circuit(), seed=5)
        _, _, r2 = implemented(pipeline_circuit(), seed=5)
        assert r1.total_wirelength == r2.total_wirelength

    def test_colocated_terminals_need_no_wire(self):
        """A net whose driver and sink share a CLB routes with 0 hops."""
        _, placement, routing = implemented(pipeline_circuit())
        for tree in routing.routed:
            positions = {placement.terminal_position(t)
                         for t in tree.net.terminals}
            if len(positions) == 1:
                assert tree.wirelength == 0

    def test_hops_to_sink_lookup(self):
        _, _, routing = implemented(pipeline_circuit())
        tree = routing.routed[0]
        for t_index in tree.sink_hops:
            assert routing.hops_to_sink(0, t_index) == tree.sink_hops[t_index]


class TestTiming:
    def test_min_period_at_least_ff_overheads(self):
        _, _, routing = implemented(pipeline_circuit())
        analysis = analyse_timing(routing)
        d = SPARTAN2_XC2S100
        assert analysis.min_period_ns >= d.t_clk_to_q + d.t_setup

    def test_critical_path_structure(self):
        _, _, routing = implemented(pipeline_circuit())
        analysis = analyse_timing(routing)
        assert analysis.critical_path
        assert analysis.critical_path[0].startswith("FF")
        assert analysis.critical_path[-1].endswith("(setup)")
        assert analysis.logic_levels_on_critical_path >= 1

    def test_max_frequency_inverse_of_period(self):
        _, _, routing = implemented(pipeline_circuit())
        analysis = analyse_timing(routing)
        assert analysis.max_frequency_mhz == pytest.approx(
            1000.0 / analysis.min_period_ns
        )

    def test_deeper_logic_is_slower(self):
        shallow = pipeline_circuit()

        deep = Circuit("deep")
        a = deep.input_bus("a", 8)
        q = deep.register(a, name="qa")
        x = q
        for _ in range(4):
            x, _ = deep.adder(x, q)
        deep.set_output("q", deep.register(x, name="qo"))

        _, _, r_shallow = implemented(shallow)
        _, _, r_deep = implemented(deep)
        assert (analyse_timing(r_deep).min_period_ns
                > analyse_timing(r_shallow).min_period_ns)

    def test_tristate_nets_use_longline_delay(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        sel = c.input_bus("sel", 1)
        q = c.register(a, name="q")
        net = c.tristate_bus("net", 4)
        c.tbuf_drive(q, sel[0], net)
        nsel = c.not_(sel[0])
        c.tbuf_drive(a, nsel, net)
        c.set_output("o", c.register(net, name="qo"))
        _, _, routing = implemented(c)
        analysis = analyse_timing(routing)
        # path: FF -> TBUF -> longline -> FF: clk_q + tbuf + longline + setup
        d = SPARTAN2_XC2S100
        floor = d.t_clk_to_q + d.t_tbuf + d.t_longline + d.t_setup
        assert analysis.min_period_ns >= floor - 1e-6

    def test_paths_counted(self):
        _, _, routing = implemented(pipeline_circuit())
        analysis = analyse_timing(routing)
        assert analysis.n_timing_paths >= 8  # at least the q register Ds
