"""Tests for the FPGA device models."""

import pytest

from repro.fpga.device import SPARTAN2_XC2S100, XC4005XL, FpgaDevice


class TestXc2s100:
    def test_paper_capacities(self):
        d = SPARTAN2_XC2S100
        assert d.n_clbs == 600
        assert d.n_slices == 1200     # "out of 1200" in the paper
        assert d.n_luts == 2400
        assert d.n_ffs == 2400
        assert d.n_iobs == 92         # "out of 92"
        assert d.n_tbufs == 1280      # "out of 1280"

    def test_str(self):
        assert "xc2s100" in str(SPARTAN2_XC2S100)
        assert "tq144" in str(SPARTAN2_XC2S100)


class TestNetDelay:
    def test_zero_hops_is_base(self):
        d = SPARTAN2_XC2S100
        assert d.net_delay(0) == pytest.approx(d.t_net_base)

    def test_monotone(self):
        d = SPARTAN2_XC2S100
        delays = [d.net_delay(h) for h in range(20)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_segmentation_discount_for_long_nets(self):
        d = SPARTAN2_XC2S100
        short_rate = d.net_delay(3) - d.net_delay(2)
        long_rate = d.net_delay(12) - d.net_delay(11)
        assert long_rate < short_rate

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            SPARTAN2_XC2S100.net_delay(-1)


class TestXc4005xl:
    def test_is_smaller_and_slower(self):
        assert XC4005XL.n_clbs < SPARTAN2_XC2S100.n_clbs
        assert XC4005XL.t_lut > SPARTAN2_XC2S100.t_lut


class TestCustomDevice:
    def test_derived_counts(self):
        d = FpgaDevice(
            name="toy", family="toy", package="x", speed_grade="-1",
            rows=2, cols=3, slices_per_clb=2, luts_per_slice=2,
            ffs_per_slice=2, n_iobs=10, n_tbufs=8, channel_width=4,
            t_lut=1, t_clk_to_q=1, t_setup=1, t_tbuf=1, t_iob=1,
            t_net_base=1, t_net_per_hop=1, t_longline=2,
        )
        assert d.n_clbs == 6
        assert d.n_slices == 12
