"""Tests for the FlowMap technology mapper."""

import pytest

from repro.core.errors import FlowError
from repro.hdl.circuit import Circuit
from repro.hdl.gates import Gate
from repro.hdl.signal import Bus
from repro.hdl.sim import Simulator
from repro.fpga.techmap import flowmap


def _source_values(mapping, sim_circuit):
    values = {}
    for sig in mapping.sources:
        if isinstance(sig.driver, Gate) and sig.driver.kind.startswith("CONST"):
            continue
        values[sig.index] = sig.value
    return values


def assert_mapping_equivalent(circuit, mapping, stimuli):
    """Drive the gate-level sim, then check every mapped sink agrees."""
    sim = Simulator(circuit)
    for stimulus in stimuli:
        for name, value in stimulus.items():
            sim.set_input(name, value)
        values = mapping.evaluate(_source_values(mapping, circuit))
        for sink in mapping.sinks:
            if sink.index in values:
                assert values[sink.index] == sink.value, sink.name


def adder_circuit(width=4):
    c = Circuit("adder")
    a = c.input_bus("a", width)
    b = c.input_bus("b", width)
    s, co = c.adder(a, b)
    c.set_output("s", s)
    c.set_output("co", Bus("co", [co]))
    return c


class TestCoverInvariants:
    def test_fanin_bound_respected(self):
        c = adder_circuit(8)
        Simulator(c)
        mapping = flowmap(c, k=4)
        for lut in mapping.luts:
            assert 1 <= len(lut.inputs) <= 4

    def test_every_gate_driven_sink_realised(self):
        c = adder_circuit(4)
        Simulator(c)
        mapping = flowmap(c, k=4)
        realised = {lut.output.index for lut in mapping.luts}
        for sink in mapping.sinks:
            if isinstance(sink.driver, Gate) and not sink.driver.kind.startswith("CONST"):
                assert sink.index in realised

    def test_constants_never_occupy_lut_inputs(self):
        c = Circuit("t")
        a = c.input_bus("a", 4)
        gated = c.and_bus(a, c.const_bus(0b1010, 4))
        c.set_output("o", gated)
        Simulator(c)
        mapping = flowmap(c)
        for lut in mapping.luts:
            for sig in lut.inputs:
                driver = sig.driver
                assert not (isinstance(driver, Gate)
                            and driver.kind.startswith("CONST"))

    def test_depth_no_worse_than_gate_depth(self):
        c = adder_circuit(6)
        sim = Simulator(c)
        gate_depth = 1 + max(g.level for g in c.gates)
        mapping = flowmap(c, k=4)
        assert mapping.depth <= gate_depth
        del sim

    def test_fewer_luts_than_gates(self):
        c = adder_circuit(8)
        Simulator(c)
        mapping = flowmap(c, k=4)
        real_gates = [g for g in c.gates if not g.kind.startswith("CONST")]
        assert mapping.n_luts < len(real_gates)

    def test_k2_mapping_works(self):
        c = adder_circuit(3)
        Simulator(c)
        mapping = flowmap(c, k=2)
        for lut in mapping.luts:
            assert len(lut.inputs) <= 2

    def test_k_below_2_rejected(self):
        with pytest.raises(FlowError):
            flowmap(adder_circuit(2), k=1)


class TestFunctionalEquivalence:
    def test_adder_exhaustive(self):
        c = adder_circuit(3)
        mapping = flowmap(c, k=4)
        stimuli = [{"a": a, "b": b} for a in range(8) for b in range(8)]
        assert_mapping_equivalent(c, mapping, stimuli)

    def test_mux_decoder_circuit(self):
        c = Circuit("t")
        sel = c.input_bus("sel", 3)
        c.set_output("oh", c.decoder(sel))
        mapping = flowmap(c, k=4)
        assert_mapping_equivalent(c, mapping, [{"sel": v} for v in range(8)])

    def test_sequential_boundaries(self):
        """FF outputs are mapping sources, FF inputs are sinks."""
        c = Circuit("t")
        a = c.input_bus("a", 4)
        q = c.register(c.increment(a), name="q")
        c.set_output("q2", c.increment(q))
        mapping = flowmap(c, k=4)
        stimuli = [{"a": v} for v in (0, 5, 15)]
        sim = Simulator(c)
        for stimulus in stimuli:
            sim.set_input("a", stimulus["a"])
            sim.tick()
            values = mapping.evaluate(_source_values(mapping, c))
            for sink in mapping.sinks:
                if sink.index in values:
                    assert values[sink.index] == sink.value

    def test_rotator_sampled(self):
        c = Circuit("t")
        a = c.input_bus("a", 8)
        amt = c.input_bus("amt", 3)
        c.set_output("r", c.barrel_rotate_left(a, amt))
        mapping = flowmap(c, k=4)
        stimuli = [{"a": 0b1011_0010, "amt": k} for k in range(8)]
        assert_mapping_equivalent(c, mapping, stimuli)

    def test_tristate_boundaries(self):
        c = Circuit("t")
        a = c.input_bus("a", 2)
        b = c.input_bus("b", 2)
        sel = c.input_bus("sel", 1)
        net = c.tristate_bus("net", 2)
        c.tbuf_drive(a, sel[0], net)
        c.tbuf_drive(b, c.not_(sel[0]), net)
        c.set_output("o", c.increment(net))
        mapping = flowmap(c, k=4)
        stimuli = [{"a": 1, "b": 2, "sel": s} for s in (0, 1)]
        assert_mapping_equivalent(c, mapping, stimuli)


class TestLutEvaluate:
    def test_wrong_input_count_rejected(self):
        c = adder_circuit(2)
        mapping = flowmap(c)
        lut = mapping.luts[0]
        with pytest.raises(ValueError):
            lut.evaluate([0] * (len(lut.inputs) + 1))

    def test_evaluate_missing_sources_raises(self):
        c = adder_circuit(2)
        mapping = flowmap(c)
        with pytest.raises(FlowError):
            mapping.evaluate({})

    def test_covered_gate_accounting(self):
        c = adder_circuit(4)
        mapping = flowmap(c)
        total_covered = sum(lut.n_covered for lut in mapping.luts)
        real_gates = len([g for g in c.gates if not g.kind.startswith("CONST")])
        # LUT cones may overlap (shared logic duplicated), so covered >=
        # distinct gates actually needed, and every LUT covers >= 1.
        assert total_covered >= mapping.n_luts
        assert all(lut.n_covered >= 1 for lut in mapping.luts)
        assert total_covered >= real_gates - mapping.n_luts  # sanity scale


class TestFullDesignMapping:
    def test_mhhea_netlist_maps_cleanly(self):
        from repro.rtl.top import build_mhhea_top

        top = build_mhhea_top()
        mapping = flowmap(top.circuit, k=4)
        # paper reports 393 4-input LUTs; same order of magnitude here
        assert 250 <= mapping.n_luts <= 550
        assert mapping.depth <= 20
