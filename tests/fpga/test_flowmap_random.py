"""Property test: FlowMap must preserve the function of *random* netlists.

Random gate DAGs are generated from a seed (hypothesis drives the seed
and shape), mapped to 4-LUTs, and the mapped netlist is evaluated
against the gate-level simulator on random stimuli — the strongest
general guarantee a mapper can offer.
"""

from hypothesis import given, settings, strategies as st

from repro.fpga.techmap import flowmap
from repro.hdl.circuit import Circuit
from repro.hdl.gates import Gate
from repro.hdl.signal import Bus
from repro.hdl.sim import Simulator
from repro.util.rng import SplitMix64

_KINDS = ("AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2", "NOT", "MUX2",
          "ANDN2")


def random_circuit(seed: int, n_inputs: int, n_gates: int) -> Circuit:
    """A random combinational DAG: each gate reads earlier signals."""
    rng = SplitMix64(seed)
    c = Circuit(f"rand{seed}")
    pool = list(c.input_bus("in", n_inputs))
    for g in range(n_gates):
        kind = _KINDS[rng.below(len(_KINDS))]
        if kind == "NOT":
            ins = [pool[rng.below(len(pool))]]
        elif kind == "MUX2":
            ins = [pool[rng.below(len(pool))] for _ in range(3)]
        else:
            ins = [pool[rng.below(len(pool))] for _ in range(2)]
        pool.append(c.gate(kind, *ins, name=f"g{g}"))
    # last few signals become outputs so deep cones stay observable
    outs = pool[-min(8, len(pool)):]
    c.set_output("out", Bus("out", outs))
    return c


@given(st.integers(0, 10_000), st.integers(2, 8), st.integers(5, 60),
       st.integers(0, 2**30))
@settings(max_examples=25, deadline=None)
def test_random_netlists_map_equivalently(seed, n_inputs, n_gates, stimulus):
    circuit = random_circuit(seed, n_inputs, n_gates)
    sim = Simulator(circuit)
    mapping = flowmap(circuit, k=4)
    for lut in mapping.luts:
        assert 1 <= len(lut.inputs) <= 4

    sim.set_input("in", stimulus % (1 << n_inputs))
    sources = {
        s.index: s.value
        for s in mapping.sources
        if not (isinstance(s.driver, Gate) and s.driver.kind.startswith("CONST"))
    }
    values = mapping.evaluate(sources)
    for sink in mapping.sinks:
        if sink.index in values:
            assert values[sink.index] == sink.value


@given(st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_mapping_depth_never_exceeds_gate_depth(seed):
    circuit = random_circuit(seed, 6, 40)
    sim = Simulator(circuit)
    gate_depth = 1 + max((g.level for g in circuit.gates), default=0)
    mapping = flowmap(circuit, k=4)
    assert mapping.depth <= gate_depth
    del sim
