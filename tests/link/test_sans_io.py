"""The sans-IO guarantee: the link core never touches asyncio/sockets.

Two layers of enforcement:

* a **source-level** check that no core module of ``repro.link`` (or
  the session/framing layers it builds on) imports an I/O module at the
  top level;
* a **subprocess** check that actually importing the core pulls neither
  ``asyncio`` nor ``socket`` into ``sys.modules`` — the property that
  makes the protocol usable on event-loop-free edge targets, and the
  one a stray eager re-export would silently break.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

#: Modules that must stay free of I/O imports at the top level.
CORE_MODULES = [
    "repro/link/__init__.py",
    "repro/link/events.py",
    "repro/link/protocol.py",
    "repro/link/memory.py",
    "repro/net/__init__.py",
    "repro/net/session.py",
    "repro/net/framing.py",
    "repro/net/metrics.py",
    # The scenario harness core is sans-IO by contract; only
    # repro/scenario/udp.py and repro/scenario/tcp.py (lazily loaded)
    # may open sockets.
    "repro/scenario/__init__.py",
    "repro/scenario/faults.py",
    "repro/scenario/traffic.py",
    "repro/scenario/cover.py",
    "repro/scenario/runner.py",
    "repro/scenario/attacks.py",
    "repro/scenario/relay.py",
    # The relay hub is a sans-IO state machine; only
    # repro/relay/server.py (lazily loaded) may touch asyncio.
    "repro/relay/__init__.py",
    "repro/relay/events.py",
    "repro/relay/admission.py",
    "repro/relay/router.py",
    "repro/relay/config.py",
    "repro/relay/core.py",
    "repro/relay/harness.py",
    # The key-exchange subsystem runs inside the link core, so it is
    # held to the same sans-IO bar.
    "repro/kex/__init__.py",
    "repro/kex/x25519.py",
    "repro/kex/hkdf.py",
    "repro/kex/wire.py",
    "repro/kex/handshake.py",
    "repro/kex/tickets.py",
    "repro/kex/keyring.py",
]

#: I/O modules the sans-IO core must never import.
FORBIDDEN = {"asyncio", "socket", "selectors", "ssl", "socketserver"}


def _top_level_imports(path: pathlib.Path) -> set:
    """Names imported at module level (``import x`` / ``from x import``)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.update(alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


@pytest.mark.parametrize("relative", CORE_MODULES)
def test_core_module_source_is_io_free(relative):
    found = _top_level_imports(SRC / relative) & FORBIDDEN
    assert not found, f"{relative} imports I/O modules: {sorted(found)}"


def test_importing_link_core_pulls_no_asyncio_or_socket():
    """A fresh interpreter importing repro.link stays I/O-free."""
    code = (
        "import sys\n"
        "import repro.link\n"
        "import repro.link.protocol, repro.link.events, repro.link.memory\n"
        "bad = sorted(name for name in ('asyncio', 'socket', 'ssl')\n"
        "             if name in sys.modules)\n"
        "assert not bad, f'link core imported {bad}'\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_link_core_is_usable_without_asyncio():
    """Not just importable: a full handshake + round trip, loop-free."""
    code = (
        "import sys\n"
        "from repro.core.key import Key\n"
        "from repro.link import LinkPair, PayloadReceived\n"
        "pair = LinkPair(Key.generate(seed=1, n_pairs=4),\n"
        "                session_id=b'NOLOOP00')\n"
        "pair.handshake()\n"
        "pair.initiator.send_payload(b'edge payload')\n"
        "_, events = pair.pump()\n"
        "assert [e.payload for e in events\n"
        "        if isinstance(e, PayloadReceived)] == [b'edge payload']\n"
        "assert 'asyncio' not in sys.modules\n"
        "assert 'socket' not in sys.modules\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_lazy_package_keeps_submodule_attribute_access():
    """``import repro; repro.api`` worked eagerly — it must keep working."""
    code = (
        "import repro\n"
        "repro.api.open_codec\n"
        "repro.net.session.Session\n"
        "repro.link.LinkProtocol\n"
        "repro.util.lfsr.Lfsr\n"
        "repro.core.stream.encrypt_packet\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_scenario_core_pulls_no_asyncio_or_socket():
    """The fault-injection harness stays sans-IO; only the UDP matrix
    (a lazy attribute) may load socket."""
    code = (
        "import sys\n"
        "import repro.scenario\n"
        "from repro.scenario import FaultSchedule, TrafficMix, FaultyLink\n"
        "bad = sorted(name for name in ('asyncio', 'socket', 'ssl')\n"
        "             if name in sys.modules)\n"
        "assert not bad, f'scenario core imported {bad}'\n"
        "repro.scenario.run_transport_matrix  # lazy attribute access\n"
        "assert 'socket' in sys.modules\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_relay_core_pulls_no_asyncio_or_socket():
    """A relay hub routing real payloads never loads an event loop;
    only the asyncio adapter (a lazy attribute) may."""
    code = (
        "import sys\n"
        "import repro.relay\n"
        "hub = repro.relay.MemoryRelayHub()\n"
        "a = hub.connect('alpha', channel=b'room')\n"
        "b = hub.connect('alpha', channel=b'room')\n"
        "a.send(b'edge routed')\n"
        "b.pump()\n"
        "assert b.received == [b'edge routed'], b.received\n"
        "bad = sorted(name for name in ('asyncio', 'socket', 'ssl')\n"
        "             if name in sys.modules)\n"
        "assert not bad, f'relay core imported {bad}'\n"
        "repro.relay.RelayServer  # lazy attribute access\n"
        "assert 'asyncio' in sys.modules\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_socket_transports_load_lazily():
    """Touching the sync transport *does* load socket — only then."""
    code = (
        "import sys\n"
        "import repro.link\n"
        "assert 'socket' not in sys.modules\n"
        "repro.link.SyncLinkClient  # lazy attribute access\n"
        "assert 'socket' in sys.modules\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC)},
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
