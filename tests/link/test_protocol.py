"""Unit tests for the sans-IO LinkProtocol state machine."""

import pytest

from repro.core.errors import HandshakeError, ReplayError, SessionError
from repro.core.key import Key
from repro.link import (
    CLOSED,
    FAILED,
    HANDSHAKE,
    OPEN,
    HandshakeComplete,
    LinkClosed,
    LinkPair,
    LinkProtocol,
    PacketReceived,
    PayloadReceived,
    ProtocolError,
)
from repro.net.framing import Hello
from repro.net.session import Session, SessionConfig, key_fingerprint

SID = b"protosid"


def handshaken(key, config=None):
    """A fresh, pumped-open pair of protocol ends."""
    pair = LinkPair(key, config=config, session_id=SID)
    pair.handshake()
    return pair


class TestHandshake:
    def test_initiator_queues_hello_at_construction(self, key16):
        proto = LinkProtocol(key16, "initiator", session_id=SID)
        assert proto.state == HANDSHAKE
        hello = Hello.unpack(proto.data_to_send())
        assert hello.session_id == SID
        assert hello.fingerprint == key_fingerprint(key16)

    def test_responder_sends_nothing_until_hello_arrives(self, key16):
        proto = LinkProtocol(key16, "responder")
        assert proto.bytes_to_send == 0
        assert proto.session_id is None

    def test_both_ends_emit_handshake_complete(self, key16):
        pair = LinkPair(key16, session_id=SID)
        initiator_events, responder_events = pair.pump()
        assert [type(e) for e in initiator_events] == [HandshakeComplete]
        assert [type(e) for e in responder_events] == [HandshakeComplete]
        assert pair.initiator.state == OPEN
        assert pair.responder.state == OPEN
        assert pair.responder.session_id == SID

    def test_sessions_pair_up(self, key16):
        pair = handshaken(key16)
        packet = pair.initiator.session.encrypt(b"direct")
        assert pair.responder.session.decrypt(packet) == b"direct"

    def test_fingerprint_mismatch_fails_responder(self, key16):
        other = Key.generate(seed=4242, n_pairs=16)
        initiator = LinkProtocol(other, "initiator", session_id=SID)
        responder = LinkProtocol(key16, "responder")
        events = responder.receive_data(initiator.data_to_send())
        assert len(events) == 1
        assert isinstance(events[0], ProtocolError)
        assert "fingerprint" in str(events[0].error)
        assert responder.state == FAILED
        assert responder.session is None  # no partial session leaks
        assert responder.bytes_to_send == 0  # no reply escapes

    def test_rekey_interval_mismatch_fails_responder(self, key16):
        initiator = LinkProtocol(key16, "initiator", session_id=SID,
                                 config=SessionConfig(rekey_interval=100))
        responder = LinkProtocol(key16, "responder",
                                 config=SessionConfig(rekey_interval=200))
        [event] = responder.receive_data(initiator.data_to_send())
        assert isinstance(event, ProtocolError)
        assert "rekey interval" in str(event.error)

    def test_initiator_rejects_foreign_session_id_echo(self, key16):
        initiator = LinkProtocol(key16, "initiator", session_id=SID)
        initiator.data_to_send()
        reply = Hello(
            algorithm=SessionConfig().algorithm,
            width=key16.params.width,
            session_id=b"WRONGSID",
            fingerprint=key_fingerprint(key16),
            rekey_interval=SessionConfig().rekey_interval,
        )
        [event] = initiator.receive_data(reply.pack())
        assert isinstance(event, ProtocolError)
        assert "session id" in str(event.error)

    def test_packet_before_hello_is_fatal(self, key16):
        responder = LinkProtocol(key16, "responder")
        packet = Session(key16, "initiator", SID).encrypt(b"too early")
        [event] = responder.receive_data(packet)
        assert isinstance(event, ProtocolError)
        assert isinstance(event.error, HandshakeError)

    def test_eof_during_handshake_is_fatal(self, key16):
        initiator = LinkProtocol(key16, "initiator", session_id=SID)
        [event] = initiator.receive_eof()
        assert isinstance(event, ProtocolError)
        assert "handshake" in str(event.error)
        assert initiator.state == FAILED

    def test_responder_rejects_explicit_session_id(self, key16):
        with pytest.raises(SessionError, match="responder"):
            LinkProtocol(key16, "responder", session_id=SID)

    def test_bad_role_rejected(self, key16):
        with pytest.raises(SessionError, match="role"):
            LinkProtocol(key16, "sidecar", session_id=SID)


class TestOpenTraffic:
    def test_round_trip_both_directions(self, key16):
        pair = handshaken(key16)
        pair.initiator.send_payload(b"ping")
        _, responder_events = pair.pump()
        assert responder_events == [PayloadReceived(b"ping", 0)]
        pair.responder.send_payload(b"pong")
        initiator_events, _ = pair.pump()
        assert initiator_events == [PayloadReceived(b"pong", 0)]

    def test_hello_mid_session_is_fatal(self, key16):
        pair = handshaken(key16)
        hello = LinkProtocol(key16, "initiator", session_id=SID)
        [event] = pair.responder.receive_data(hello.data_to_send())
        assert isinstance(event, ProtocolError)
        assert "mid-session" in str(event.error)

    def test_replayed_packet_is_fatal_in_stream_mode(self, key16):
        pair = handshaken(key16)
        pair.initiator.send_payload(b"once")
        packet = pair.initiator.data_to_send()
        assert isinstance(pair.responder.receive_data(packet)[0],
                          PayloadReceived)
        [event] = pair.responder.receive_data(packet)
        assert isinstance(event, ProtocolError)
        assert isinstance(event.error, ReplayError)
        assert pair.responder.state == FAILED

    def test_send_before_open_raises(self, key16):
        proto = LinkProtocol(key16, "initiator", session_id=SID)
        with pytest.raises(SessionError, match="HANDSHAKE"):
            proto.send_payload(b"too soon")

    def test_send_after_failure_raises(self, key16):
        pair = handshaken(key16)
        pair.responder.receive_data(b"JUNKJUNKJUNK")
        with pytest.raises(SessionError, match="FAILED"):
            pair.responder.send_payload(b"nope")

    def test_failed_machine_ignores_further_input(self, key16):
        pair = handshaken(key16)
        [event] = pair.responder.receive_data(b"garbage bytes")
        assert isinstance(event, ProtocolError)
        assert pair.responder.receive_data(b"more garbage") == []
        assert pair.responder.receive_eof() == []

    def test_decrypt_payloads_false_defers_crypto(self, key16):
        initiator = LinkProtocol(key16, "initiator", session_id=SID)
        responder = LinkProtocol(key16, "responder",
                                 decrypt_payloads=False)
        responder.receive_data(initiator.data_to_send())
        initiator.receive_data(responder.data_to_send())
        initiator.send_payload(b"deferred")
        [event] = responder.receive_data(initiator.data_to_send())
        assert isinstance(event, PacketReceived)
        # The caller decrypts through the machine's session (the pool
        # offload path of the asyncio adapters).
        assert responder.session.decrypt(event.packet) == b"deferred"

    def test_send_packet_escape_hatch_matches_send_payload(self, key16):
        direct = handshaken(key16)
        hatched = handshaken(key16)
        direct.initiator.send_payload(b"same bytes")
        packet = hatched.initiator.session.encrypt(b"same bytes")
        hatched.initiator.send_packet(packet)
        assert (direct.initiator.data_to_send()
                == hatched.initiator.data_to_send())


class TestCloseAndEof:
    def test_clean_eof_emits_link_closed(self, key16):
        pair = handshaken(key16)
        assert pair.responder.receive_eof() == [LinkClosed()]
        assert pair.responder.peer_closed

    def test_half_close_keeps_send_side_usable(self, key16):
        pair = handshaken(key16)
        pair.responder.receive_eof()
        pair.responder.send_payload(b"parting reply")  # must not raise
        assert pair.responder.bytes_to_send > 0

    def test_eof_mid_frame_is_fatal(self, key16):
        pair = handshaken(key16)
        pair.initiator.send_payload(b"will be torn")
        torn = pair.initiator.data_to_send()[:-3]
        assert pair.responder.receive_data(torn) == []
        [event] = pair.responder.receive_eof()
        assert isinstance(event, ProtocolError)
        assert "mid-frame" in str(event.error)

    def test_local_close_is_idempotent_and_final(self, key16):
        pair = handshaken(key16)
        pair.initiator.close()
        pair.initiator.close()
        assert pair.initiator.state == CLOSED
        with pytest.raises(SessionError, match="CLOSED"):
            pair.initiator.send_payload(b"after close")
        assert pair.initiator.receive_data(b"whatever") == []


class TestDatagramMode:
    def pair(self, key, **kwargs):
        initiator = LinkProtocol(key, "initiator", session_id=SID,
                                 datagram=True, **kwargs)
        responder = LinkProtocol(key, "responder", datagram=True, **kwargs)
        [hello] = initiator.datagrams_to_send()
        responder.receive_datagram(hello)
        [reply] = responder.datagrams_to_send()
        initiator.receive_datagram(reply)
        assert initiator.state == OPEN and responder.state == OPEN
        return initiator, responder

    def test_handshake_and_round_trip(self, key16):
        initiator, responder = self.pair(key16)
        initiator.send_payload(b"dgram")
        [datagram] = initiator.datagrams_to_send()
        assert responder.receive_datagram(datagram) == [
            PayloadReceived(b"dgram", 0)
        ]

    def test_replayed_datagram_dropped_not_fatal(self, key16):
        initiator, responder = self.pair(key16)
        initiator.send_payload(b"dup")
        [datagram] = initiator.datagrams_to_send()
        responder.receive_datagram(datagram)
        assert responder.receive_datagram(datagram) == []
        assert responder.state == OPEN
        assert responder.datagrams_dropped == 1

    def test_reordering_newest_wins_older_dropped(self, key16):
        initiator, responder = self.pair(key16)
        datagrams = []
        for i in range(3):
            initiator.send_payload(b"seq %d" % i)
            datagrams.extend(initiator.datagrams_to_send())
        # Deliver out of order: 2 first, then the stale 0 and 1.
        assert responder.receive_datagram(datagrams[2]) == [
            PayloadReceived(b"seq 2", 2)
        ]
        assert responder.receive_datagram(datagrams[0]) == []
        assert responder.receive_datagram(datagrams[1]) == []
        assert responder.datagrams_dropped == 2
        assert responder.session.metrics.rx.replays == 2

    def test_damaged_datagram_dropped(self, key16):
        initiator, responder = self.pair(key16)
        initiator.send_payload(b"will corrupt")
        [datagram] = initiator.datagrams_to_send()
        mangled = datagram[:-1] + bytes([datagram[-1] ^ 0xFF])
        assert responder.receive_datagram(mangled) == []
        assert responder.state == OPEN
        assert responder.datagrams_dropped == 1

    def test_wrong_key_hello_still_fatal(self, key16):
        other = Key.generate(seed=999, n_pairs=16)
        initiator = LinkProtocol(other, "initiator", session_id=SID,
                                 datagram=True)
        responder = LinkProtocol(key16, "responder", datagram=True)
        [hello] = initiator.datagrams_to_send()
        [event] = responder.receive_datagram(hello)
        assert isinstance(event, ProtocolError)
        assert responder.state == FAILED

    def test_mode_confusion_raises(self, key16):
        stream = LinkProtocol(key16, "initiator", session_id=SID)
        dgram = LinkProtocol(key16, "initiator", session_id=SID,
                             datagram=True)
        with pytest.raises(SessionError, match="datagram links"):
            dgram.receive_data(b"x")
        with pytest.raises(SessionError, match="stream links"):
            stream.receive_datagram(b"x")

    def test_decrypt_payloads_false_emits_packet(self, key16):
        # Regression: datagram mode used to decrypt inline regardless of
        # decrypt_payloads=False, breaking the worker-pool offload hatch
        # on datagram transports.
        initiator, responder = self.pair(key16, decrypt_payloads=False)
        initiator.send_payload(b"offloaded")
        [datagram] = initiator.datagrams_to_send()
        [event] = responder.receive_datagram(datagram)
        assert isinstance(event, PacketReceived)
        # bytes, not a view: the event crosses pickle boundaries.
        assert type(event.packet) is bytes
        assert responder.session.decrypt(event.packet) == b"offloaded"

    def test_decrypt_payloads_false_still_drops_unframeable(self, key16):
        initiator, responder = self.pair(key16, decrypt_payloads=False)
        assert responder.receive_datagram(b"not a frame") == []
        assert responder.datagrams_dropped == 1
        assert responder.state == OPEN

    def test_decoder_reused_across_datagrams(self, key16):
        # Regression: each datagram used to get a fresh FrameDecoder,
        # losing the skip accounting and reallocating on the hot path.
        initiator, responder = self.pair(key16)
        decoder = responder._decoder
        initiator.send_payload(b"one")
        [datagram] = initiator.datagrams_to_send()
        responder.receive_datagram(datagram)
        assert responder._decoder is decoder

    def test_drop_accounting_survives_decoder_reuse(self, key16):
        initiator, responder = self.pair(key16)
        junk_first = b"\xde\xad\xbe\xef garbage"
        junk_second = b"MH"  # a bare magic prefix: unframeable too
        assert responder.receive_datagram(junk_first) == []
        assert responder.receive_datagram(junk_second) == []
        assert responder.datagrams_dropped == 2
        skipped = responder._decoder.bytes_skipped
        assert skipped == len(junk_first) + len(junk_second)
        # The reused decoder is clean: a valid datagram still decodes,
        # and the cumulative skip count is undisturbed by success.
        initiator.send_payload(b"still fine")
        [datagram] = initiator.datagrams_to_send()
        assert responder.receive_datagram(datagram) == [
            PayloadReceived(b"still fine", 0)
        ]
        assert responder._decoder.bytes_skipped == skipped
        assert responder.datagrams_dropped == 2

    def test_two_frames_in_one_datagram_dropped_with_accounting(self, key16):
        initiator, responder = self.pair(key16)
        initiator.send_payload(b"a")
        initiator.send_payload(b"b")
        two = b"".join(initiator.datagrams_to_send())
        assert responder.receive_datagram(two) == []
        assert responder.datagrams_dropped == 1
        # Neither frame bled into the next receive: the decoder reset.
        initiator.send_payload(b"c")
        [datagram] = initiator.datagrams_to_send()
        assert responder.receive_datagram(datagram) == [
            PayloadReceived(b"c", 2)
        ]


class TestBatchedReceive:
    """The stream hot path: bursts decrypt through Session.decrypt_batch."""

    def test_burst_matches_per_frame_delivery(self, key16):
        pair = handshaken(key16)
        payloads = [b"burst %d" % i for i in range(6)]
        for payload in payloads:
            pair.initiator.send_payload(payload)
        burst = pair.initiator.data_to_send()
        events = pair.responder.receive_data(burst)
        assert events == [PayloadReceived(p, i)
                          for i, p in enumerate(payloads)]

    def test_burst_one_byte_at_a_time(self, key16):
        pair = handshaken(key16)
        payloads = [b"drip %d" % i for i in range(3)]
        for payload in payloads:
            pair.initiator.send_payload(payload)
        burst = pair.initiator.data_to_send()
        events = []
        for i in range(len(burst)):
            events.extend(pair.responder.receive_data(burst[i:i + 1]))
        assert events == [PayloadReceived(p, i)
                          for i, p in enumerate(payloads)]

    def test_damage_mid_burst_keeps_accepted_prefix(self, key16):
        pair = handshaken(key16)
        for i in range(3):
            pair.initiator.send_payload(b"pkt %d" % i)
        packets = []
        # Collect the three individual packets for surgical damage.
        from repro.core.stream import split_packets
        packets = split_packets(pair.initiator.data_to_send())
        mangled = packets[1][:-1] + bytes([packets[1][-1] ^ 0xFF])
        events = pair.responder.receive_data(
            packets[0] + mangled + packets[2])
        assert events[0] == PayloadReceived(b"pkt 0", 0)
        assert isinstance(events[1], ProtocolError)
        assert len(events) == 2  # nothing after the failure
        assert pair.responder.state == FAILED

    def test_replay_mid_burst_keeps_accepted_prefix(self, key16):
        pair = handshaken(key16)
        pair.initiator.send_payload(b"first")
        pair.initiator.send_payload(b"second")
        from repro.core.stream import split_packets
        packets = split_packets(pair.initiator.data_to_send())
        events = pair.responder.receive_data(
            packets[0] + packets[1] + packets[0])
        assert events[:2] == [PayloadReceived(b"first", 0),
                              PayloadReceived(b"second", 1)]
        assert isinstance(events[2], ProtocolError)
        assert isinstance(events[2].error, ReplayError)

    def test_mixed_hello_and_packets_in_one_chunk(self, key16):
        # The responder's first chunk can carry the hello plus payloads
        # that rode in behind it; the batch path must not touch the
        # hello and must decrypt the run that follows.
        initiator = LinkProtocol(key16, "initiator", session_id=SID)
        responder = LinkProtocol(key16, "responder")
        hello = initiator.data_to_send()
        # Pre-open the initiator's view of the link via a twin pair to
        # mint valid packets for the same session id and keys.
        twin = LinkPair(key16, session_id=SID)
        twin.handshake()
        twin.initiator.send_payload(b"rode along")
        chunk = hello + twin.initiator.data_to_send()
        events = responder.receive_data(chunk)
        assert [type(e) for e in events] == [HandshakeComplete,
                                             PayloadReceived]
        assert events[1].payload == b"rode along"


class TestAfterCloseAccounting:
    """Bytes past the peer's clean EOF are dropped *with* accounting."""

    def test_bytes_after_close_counted(self, key16):
        pair = handshaken(key16)
        pair.initiator.send_payload(b"late")
        late = pair.initiator.data_to_send()
        assert pair.responder.receive_eof() == [LinkClosed()]
        assert pair.responder.receive_data(late) == []
        assert pair.responder.bytes_after_close == len(late)
        assert pair.responder.receive_data(b"more") == []
        assert pair.responder.bytes_after_close == len(late) + 4
        # The link is still half-open: the local send side works.
        pair.responder.send_payload(b"reply out")

    def test_after_close_obs_counter_and_log(self, key16, caplog):
        import logging

        from repro.obs import core as obs

        registry = obs.ObsRegistry()
        previous = obs.set_registry(registry)
        try:
            # Instruments bind at construction: build the pair while the
            # live registry is installed.
            pair = handshaken(key16)
            pair.responder.receive_eof()
            with caplog.at_level(logging.WARNING, logger="repro.link"):
                pair.responder.receive_data(b"zombie bytes")
        finally:
            obs.set_registry(previous if previous.enabled else None)
        counter = registry.counter("repro_link_drops_total",
                                   reason="after-close")
        assert counter.value == 1
        assert "after_close_drop" in caplog.text


class TestCodecBinding:
    def test_codec_link_carries_policy(self, key16):
        import repro

        with repro.open_codec(key16, engine="fast",
                              rekey_interval=64) as codec:
            proto = codec.link("initiator", session_id=SID)
        assert proto.config.engine == "fast"
        assert proto.config.rekey_interval == 64
        hello = Hello.unpack(proto.data_to_send())
        assert hello.rekey_interval == 64

    def test_codec_linked_ends_interoperate(self, key16):
        import repro

        with repro.open_codec(key16) as codec:
            initiator = codec.link("initiator", session_id=SID)
            responder = codec.link("responder")
        responder.receive_data(initiator.data_to_send())
        initiator.receive_data(responder.data_to_send())
        initiator.send_payload(b"via codec")
        [event] = responder.receive_data(initiator.data_to_send())
        assert event == PayloadReceived(b"via codec", 0)

    def test_closed_codec_refuses_link(self, key16):
        import repro

        codec = repro.open_codec(key16)
        codec.close()
        with pytest.raises(RuntimeError, match="closed"):
            codec.link("initiator")
