"""Hello-v2 on the link layer: interop matrix, tickets, and wire pinning.

The downgrade-resistance contract under test: what a link accepts is
fixed by *local* configuration, never by what arrives on the wire.  A
kex-less end speaks hello-v1 byte-for-byte as it always has; a kex end
only falls back to the pre-shared path when its own policy lists
``psk``; every mismatched pairing aborts instead of degrading.
"""

import pytest

from repro.core.errors import HandshakeError, SessionError
from repro.core.key import Key
from repro.kex import KexConfig, TicketVault, kex_auth_secret
from repro.link import LinkPair
from repro.link.protocol import OPEN
from repro.net.session import SessionConfig

ENGINES = ("reference", "fast")


def client_kex(root, *, modes=("ecdh", "resume"), ticket=None):
    return KexConfig(auth_secret=kex_auth_secret(root), modes=modes,
                     params=root.params, n_pairs=len(root), ticket=ticket)


def server_kex(root, *, modes=("ecdh", "resume", "psk"), vault=None):
    return KexConfig(auth_secret=kex_auth_secret(root), modes=modes,
                     params=root.params, n_pairs=len(root),
                     tickets=vault if vault is not None
                     else TicketVault(b"link test vault"))


def make_pair(root, *, kex, responder_kex, config=None, **kwargs):
    return LinkPair(root, config, session_id=b"KEXLINK1",
                    responder_root=root, kex=kex,
                    responder_kex=responder_kex, **kwargs)


def roundtrip(pair):
    pair.handshake()
    pair.initiator.send_payload(b"interop probe")
    _, events = pair.pump()
    payloads = [e.payload for e in events
                if type(e).__name__ == "PayloadReceived"]
    assert payloads == [b"interop probe"]


# -- the interop matrix, on both cipher engines ---------------------------

@pytest.mark.parametrize("engine", ENGINES)
class TestInteropMatrix:
    def config(self, engine):
        return SessionConfig(engine=engine)

    def test_psk_client_psk_server(self, key4, engine):
        pair = make_pair(key4, kex=None, responder_kex=None,
                         config=self.config(engine))
        roundtrip(pair)
        assert pair.initiator.kex_mode == "psk"
        assert pair.responder.kex_mode == "psk"

    def test_psk_client_dual_server_falls_back_by_local_policy(
            self, key4, engine):
        pair = make_pair(key4, kex=None, responder_kex=server_kex(key4),
                         config=self.config(engine))
        roundtrip(pair)
        assert pair.responder.kex_mode == "psk"

    def test_ecdh_client_dual_server(self, key4, engine):
        pair = make_pair(key4, kex=client_kex(key4),
                         responder_kex=server_kex(key4),
                         config=self.config(engine))
        roundtrip(pair)
        assert pair.initiator.kex_mode == "ecdh"
        assert pair.responder.kex_mode == "ecdh"
        assert pair.initiator.fingerprint == pair.responder.fingerprint

    def test_psk_client_ecdh_only_server_aborts(self, key4, engine):
        pair = make_pair(key4, kex=None,
                         responder_kex=server_kex(key4, modes=("ecdh",)),
                         config=self.config(engine))
        with pytest.raises((HandshakeError, SessionError)):
            pair.handshake()
        assert pair.responder.state != OPEN

    def test_ecdh_client_psk_only_server_aborts(self, key4, engine):
        pair = make_pair(key4, kex=client_kex(key4), responder_kex=None,
                         config=self.config(engine))
        with pytest.raises((HandshakeError, SessionError)):
            pair.handshake()
        assert pair.initiator.state != OPEN

    def test_resume_roundtrip(self, key4, engine):
        vault = TicketVault(b"link test vault")
        first = make_pair(key4, kex=client_kex(key4),
                          responder_kex=server_kex(key4, vault=vault),
                          config=self.config(engine))
        roundtrip(first)
        ticket = first.initiator.issued_ticket
        assert ticket is not None
        resumed = make_pair(
            key4, kex=client_kex(key4, ticket=ticket),
            responder_kex=server_kex(key4, vault=vault),
            config=self.config(engine))
        roundtrip(resumed)
        assert resumed.initiator.kex_mode == "resume"
        assert resumed.responder.kex_mode == "resume"
        assert resumed.initiator.fingerprint != first.initiator.fingerprint


# -- kex sessions derive fresh roots -------------------------------------

def test_ecdh_sessions_never_reuse_the_preshared_root(key4):
    pair = make_pair(key4, kex=client_kex(key4),
                     responder_kex=server_kex(key4))
    roundtrip(pair)
    psk_pair = make_pair(key4, kex=None, responder_kex=None)
    psk_pair.handshake()
    assert pair.initiator.fingerprint != psk_pair.initiator.fingerprint


def test_two_ecdh_handshakes_derive_distinct_roots(key4):
    fingerprints = []
    for _ in range(2):
        pair = make_pair(key4, kex=client_kex(key4),
                         responder_kex=server_kex(key4))
        pair.handshake()
        fingerprints.append(pair.initiator.fingerprint)
    assert fingerprints[0] != fingerprints[1]


# -- pre-shared wire pinning ---------------------------------------------

def capture_handshake(root, **pair_kwargs):
    i2r, r2i = [], []
    pair = LinkPair(root, SessionConfig(), session_id=b"WIREPIN1",
                    i2r_filter=lambda b: (i2r.append(b), b)[1],
                    r2i_filter=lambda b: (r2i.append(b), b)[1],
                    **pair_kwargs)
    pair.handshake()
    return b"".join(i2r), b"".join(r2i)


def test_preshared_wire_is_unchanged_by_the_kex_subsystem(key16):
    """kex=None emits the classic hello-v1 exchange and nothing else:
    no MKX2 frame ever appears, and the bytes are reproducible."""
    i2r, r2i = capture_handshake(key16)
    assert b"MKX2" not in i2r and b"MKX2" not in r2i
    assert i2r.startswith(b"MHLO") and r2i.startswith(b"MHLO")
    again = capture_handshake(Key.generate(seed=2005, n_pairs=16))
    assert (i2r, r2i) == again


def test_kex_handshake_leads_with_hello_v2(key16):
    i2r, r2i = capture_handshake(
        key16, responder_root=key16, kex=client_kex(key16),
        responder_kex=server_kex(key16))
    assert i2r.startswith(b"MKX2") and r2i.startswith(b"MKX2")
    # The classic hello still follows, under the derived root.
    assert b"MHLO" in i2r and b"MHLO" in r2i
