"""The pluggable transports all drive one LinkProtocol — prove it.

Round trips through the in-memory pair, the blocking-socket peers and
the UDP datagram peers, for both engines; plus the cross-transport
matrix the sans-IO split makes possible (a blocking client against the
asyncio server) and the ``repro.serve``/``repro.connect`` ``transport=``
wiring.
"""

import asyncio
import socket

import pytest

import repro
from repro.core.errors import HandshakeError, SessionError
from repro.core.key import Key
from repro.link import (
    LinkPair,
    MemoryLinkServer,
    SyncLinkClient,
    SyncLinkServer,
    UdpLinkClient,
    UdpLinkServer,
)
from repro.net import SecureLinkServer
from repro.net.session import SessionConfig

SID = b"transsid"

PAYLOADS = [b"", b"alpha", b"beta " * 200, bytes(range(256))]

ENGINES = ("reference", "fast")


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


@pytest.mark.parametrize("engine", ENGINES)
class TestMemoryTransport:
    def test_round_trip_through_link_pair(self, key16, engine):
        config = SessionConfig(engine=engine, rekey_interval=3)
        with MemoryLinkServer(key16, config=config) as server:
            with server.connect(session_id=SID) as client:
                assert client.send_all(PAYLOADS) == PAYLOADS
                assert client.metrics.tx.packets == len(PAYLOADS)
                assert client.metrics.tx.rekeys == 1
        name = next(iter(server.metrics.sessions))
        assert server.metrics.sessions[name].rx.packets == len(PAYLOADS)

    def test_handler_transforms(self, key16, engine):
        config = SessionConfig(engine=engine)
        with MemoryLinkServer(key16, config=config,
                              handler=bytes.upper) as server:
            with server.connect() as client:
                assert client.request(b"shout") == b"SHOUT"

    def test_sessions_isolated_per_connection(self, key16, engine):
        config = SessionConfig(engine=engine)
        with MemoryLinkServer(key16, config=config) as server:
            one = server.connect(session_id=b"A" * 8)
            two = server.connect(session_id=b"B" * 8)
            assert one.request(b"same") == b"same"
            assert two.request(b"same") == b"same"
            assert (one.session.encrypt(b"probe")
                    != two.session.encrypt(b"probe"))

    def test_wrong_client_key_fails_like_every_other_transport(self, key16,
                                                               engine):
        # The in-memory handshake genuinely negotiates: a client codec
        # with a different key must fail exactly as it would over a
        # socket, not silently inherit the server's material.
        other = Key.generate(seed=8080, n_pairs=16)
        config = SessionConfig(engine=engine)
        with MemoryLinkServer(key16, config=config) as server:
            with pytest.raises(HandshakeError, match="fingerprint"):
                server.connect(session_id=SID, root=other, config=config)
            assert any("fingerprint" in err for err in server.errors)
            assert server.metrics.sessions == {}  # no slot for failures


@pytest.mark.parametrize("engine", ENGINES)
class TestSyncTransport:
    def test_round_trip(self, key16, engine):
        config = SessionConfig(engine=engine, rekey_interval=3)
        with SyncLinkServer(key16, port=0, config=config) as server:
            with SyncLinkClient(key16, port=server.port, config=config,
                                session_id=SID) as client:
                assert client.send_all(PAYLOADS) == PAYLOADS
                assert client.metrics.rx.rekeys == 1
        assert server.errors == []

    def test_two_sequential_clients(self, key16, engine):
        config = SessionConfig(engine=engine)
        with SyncLinkServer(key16, port=0, config=config) as server:
            for tag in (b"A", b"B"):
                with SyncLinkClient(key16, port=server.port, config=config,
                                    session_id=tag * 8) as client:
                    assert client.request(tag) == tag
            assert len(server.metrics.sessions) == 2

    def test_wrong_key_raises_and_closes_socket(self, key16, engine):
        other = Key.generate(seed=31337, n_pairs=16)
        config = SessionConfig(engine=engine)
        with SyncLinkServer(key16, port=0, config=config) as server:
            client = SyncLinkClient(other, port=server.port, config=config,
                                    session_id=SID)
            with pytest.raises(HandshakeError):
                client.connect()
            assert client._sock is None  # no leaked transport
        assert any("fingerprint" in err for err in server.errors)


class TestSyncAgainstAsyncio:
    """The matrix cell the old welded design made impossible."""

    def test_blocking_client_against_asyncio_server(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                port = server.port

                def blocking_side():
                    with SyncLinkClient(key16, port=port,
                                        session_id=SID) as client:
                        return client.send_all(PAYLOADS)

                return await asyncio.get_running_loop().run_in_executor(
                    None, blocking_side)

        assert run(body()) == PAYLOADS

    def test_asyncio_client_against_threaded_sync_server(self, key16):
        with SyncLinkServer(key16, port=0) as server:
            async def body():
                from repro.net import SecureLinkClient

                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    return await client.send_all(PAYLOADS)

            assert run(body()) == PAYLOADS


@pytest.mark.parametrize("engine", ENGINES)
class TestUdpTransport:
    def test_round_trip(self, key16, engine):
        config = SessionConfig(engine=engine, rekey_interval=3)
        with UdpLinkServer(key16, port=0, config=config) as server:
            with UdpLinkClient(key16, port=server.port, config=config,
                               session_id=SID) as client:
                assert client.send_all(PAYLOADS) == PAYLOADS
        assert server.errors == []

    def test_two_peers_namespaced_by_address(self, key16, engine):
        config = SessionConfig(engine=engine)
        with UdpLinkServer(key16, port=0, config=config) as server:
            with UdpLinkClient(key16, port=server.port, config=config,
                               session_id=b"A" * 8) as one:
                with UdpLinkClient(key16, port=server.port, config=config,
                                   session_id=b"B" * 8) as two:
                    assert one.request(b"one") == b"one"
                    assert two.request(b"two") == b"two"
            assert len(server.metrics.sessions) == 2


class TestUdpBestEffort:
    def test_replayed_datagrams_are_absorbed(self, key16):
        """A hostile replayer on the wire costs throughput, not the link."""
        with UdpLinkServer(key16, port=0) as server:
            with UdpLinkClient(key16, port=server.port,
                               session_id=SID) as client:
                raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                try:
                    # Capture one legit exchange, then replay the
                    # client's packet from a second socket: the server
                    # mints a fresh protocol for the unknown address and
                    # fails its handshake, while the real session rolls.
                    assert client.request(b"first") == b"first"
                    packet = client.session.encrypt(b"replay bait")
                    client._proto.send_packet(packet)
                    [datagram] = client._proto.datagrams_to_send()
                    client._sock.send(datagram)
                    raw.sendto(datagram, ("127.0.0.1", server.port))
                    reply = client._sock.recv(65535)
                    events = client._proto.receive_datagram(reply)
                    assert events[0].payload == b"replay bait"
                finally:
                    raw.close()

    def test_handler_exception_does_not_kill_the_server(self, key16):
        calls = []

        def fragile(payload: bytes) -> bytes:
            calls.append(payload)
            if payload == b"poison":
                raise RuntimeError("handler bug")
            return payload

        with UdpLinkServer(key16, port=0, handler=fragile) as server:
            with UdpLinkClient(key16, port=server.port, session_id=b"A" * 8,
                               timeout=0.3) as bad:
                with pytest.raises(socket.timeout):
                    bad.request(b"poison")  # reply never comes
            # The serving thread survived: a fresh peer still works.
            with UdpLinkClient(key16, port=server.port,
                               session_id=b"B" * 8) as good:
                assert good.request(b"still alive") == b"still alive"
            assert any("handler bug" in err for err in server.errors)

    def test_peer_table_evicts_stalest_at_capacity(self, key16,
                                                   monkeypatch):
        # UDP has no close signal, so a long-lived server must keep
        # accepting fresh clients past MAX_PEERS lifetime sessions by
        # evicting the least-recently-active one — never by refusing.
        import repro.link.udp as udp_module

        monkeypatch.setattr(udp_module, "MAX_PEERS", 2)
        with UdpLinkServer(key16, port=0) as server:
            for tag in (b"A", b"B", b"C", b"D"):
                with UdpLinkClient(key16, port=server.port,
                                   session_id=tag * 8) as client:
                    assert client.request(tag) == tag
            assert len(server._peers) <= 2
        assert server.errors == []

    def test_junk_datagrams_allocate_no_peer_state(self, key16):
        with UdpLinkServer(key16, port=0) as server:
            raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                for i in range(50):  # a spoof-ish flood of non-hellos
                    raw.sendto(b"\x00junk %d" % i, ("127.0.0.1", server.port))
                with UdpLinkClient(key16, port=server.port,
                                   session_id=SID) as client:
                    assert client.request(b"real") == b"real"
            finally:
                raw.close()
            # Only the real hello earned per-peer state.
            assert len(server._peers) == 1

    def test_lost_reply_surfaces_as_timeout(self, key16):
        with UdpLinkServer(key16, port=0) as server:
            port = server.port
        # Server gone: the hello datagram vanishes into the void.
        client = UdpLinkClient(key16, port=port, session_id=SID,
                               timeout=0.2)
        with pytest.raises(HandshakeError, match="hello reply"):
            client.connect()
        assert client._sock is None


class TestFacadeTransports:
    def test_serve_connect_sync(self, key16):
        codec = repro.open_codec(key16, engine="fast")
        with repro.serve(codec, transport="sync") as server:
            with repro.connect(codec, port=server.port, transport="sync",
                               session_id=SID) as client:
                assert client.request(b"facade sync") == b"facade sync"

    def test_serve_connect_udp(self, key16):
        codec = repro.open_codec(key16)
        with repro.serve(codec, transport="udp") as server:
            with repro.connect(codec, port=server.port, transport="udp",
                               session_id=SID) as client:
                assert client.request(b"facade udp") == b"facade udp"

    def test_serve_connect_memory(self, key16):
        codec = repro.open_codec(key16)
        server = repro.serve(codec, transport="memory")
        with repro.connect(codec, transport="memory", server=server,
                           session_id=SID) as client:
            assert client.send_all([b"a", b"b"]) == [b"a", b"b"]

    def test_unknown_transport_rejected(self, key16):
        codec = repro.open_codec(key16)
        with pytest.raises(ValueError, match="unknown transport"):
            repro.serve(codec, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            repro.connect(codec, transport="quic")

    def test_facade_memory_connect_uses_client_codec(self, key16):
        other = Key.generate(seed=8081, n_pairs=16)
        server_codec = repro.open_codec(key16)
        client_codec = repro.open_codec(other)
        server = repro.serve(server_codec, transport="memory")
        with pytest.raises(HandshakeError):
            repro.connect(client_codec, transport="memory", server=server,
                          session_id=SID)

    def test_memory_connect_needs_server(self, key16):
        codec = repro.open_codec(key16)
        with pytest.raises(ValueError, match="memory"):
            repro.connect(codec, transport="memory")

    def test_server_kwarg_only_for_memory(self, key16):
        codec = repro.open_codec(key16)
        with pytest.raises(ValueError, match="server="):
            repro.connect(codec, transport="tcp", server=object())

    def test_inline_transports_reject_workers(self, key16):
        codec = repro.open_codec(key16, workers=2)
        for transport in ("sync", "udp", "memory"):
            with pytest.raises(SessionError, match="inline"):
                repro.serve(codec, transport=transport)
        codec.close()
