"""Adversarial input fuzzing for the sans-IO state machine.

The machine's contract under hostile bytes: it may only ever (a) wait
for more input, or (b) return a ``ProtocolError`` event and refuse
further traffic.  It must never hang, raise out of ``receive_data``,
emit a damaged payload, or leave a half-built session behind.  Both
engines are exercised — the machine's behaviour is engine-independent
by construction, and this pins it.
"""

import os
import random

import pytest

from repro.link import (
    FAILED,
    OPEN,
    HandshakeComplete,
    LinkProtocol,
    PayloadReceived,
    ProtocolError,
)
from repro.net.session import SessionConfig

SID = b"fuzzsid1"

SEED = int(os.environ.get("REPRO_TEST_SEED", "20050307"))

ENGINES = ("reference", "fast")

PAYLOADS = [b"", b"x", b"fuzz payload " * 9, bytes(range(256))]


def wire_for(key, engine, payloads):
    """(client_stream, server_reply_hello) for a canned conversation."""
    config = SessionConfig(engine=engine, rekey_interval=3)
    initiator = LinkProtocol(key, "initiator", config=config,
                             session_id=SID)
    responder = LinkProtocol(key, "responder", config=config)
    client_hello = initiator.data_to_send()
    responder.receive_data(client_hello)
    reply_hello = responder.data_to_send()
    initiator.receive_data(reply_hello)
    for payload in payloads:
        initiator.send_payload(payload)
    return client_hello + initiator.data_to_send(), reply_hello


@pytest.mark.parametrize("engine", ENGINES)
class TestByteDribble:
    """Feeding one byte at a time must change nothing but call counts."""

    def test_responder_survives_dribbled_handshake_and_frames(self, key16,
                                                              engine):
        stream, _ = wire_for(key16, engine, PAYLOADS)
        responder = LinkProtocol(key16, "responder",
                                 config=SessionConfig(engine=engine,
                                                      rekey_interval=3))
        events = []
        for i in range(len(stream)):
            events.extend(responder.receive_data(stream[i:i + 1]))
        assert responder.state == OPEN
        assert isinstance(events[0], HandshakeComplete)
        received = [e.payload for e in events
                    if isinstance(e, PayloadReceived)]
        assert received == PAYLOADS

    def test_initiator_survives_dribbled_hello_reply(self, key16, engine):
        config = SessionConfig(engine=engine, rekey_interval=3)
        _, reply_hello = wire_for(key16, engine, [])
        initiator = LinkProtocol(key16, "initiator", config=config,
                                 session_id=SID)
        initiator.data_to_send()
        events = []
        for i in range(len(reply_hello)):
            events.extend(initiator.receive_data(reply_hello[i:i + 1]))
        assert [type(e) for e in events] == [HandshakeComplete]
        assert initiator.state == OPEN

    def test_random_chunking_equals_single_feed(self, key16, engine):
        stream, _ = wire_for(key16, engine, PAYLOADS)
        whole = LinkProtocol(key16, "responder",
                             config=SessionConfig(engine=engine,
                                                  rekey_interval=3))
        expected = whole.receive_data(stream)
        rng = random.Random(SEED)
        chunked = LinkProtocol(key16, "responder",
                               config=SessionConfig(engine=engine,
                                                    rekey_interval=3))
        events, offset = [], 0
        while offset < len(stream):
            size = rng.randint(1, 97)
            events.extend(chunked.receive_data(stream[offset:offset + size]))
            offset += size
        assert events == expected


@pytest.mark.parametrize("engine", ENGINES)
class TestMutation:
    """Bit damage in every protocol state fails loudly, never quietly."""

    def _drive(self, key, engine, stream):
        """Feed a (possibly mangled) client stream; return (proto, events)."""
        proto = LinkProtocol(key, "responder",
                             config=SessionConfig(engine=engine,
                                                  rekey_interval=3))
        events = list(proto.receive_data(stream))
        events.extend(proto.receive_eof())
        return proto, events

    def _assert_failed_loudly(self, proto, events):
        errors = [e for e in events if isinstance(e, ProtocolError)]
        assert errors, "damage was swallowed without a ProtocolError"
        assert proto.state == FAILED
        # Once failed, the machine must stay inert — no hangs, no raises.
        assert proto.receive_data(b"afterwards") == []
        assert proto.receive_eof() == []

    def test_every_handshake_state_byte_mutation_fails(self, key16, engine):
        stream, _ = wire_for(key16, engine, [])
        for position in range(len(stream)):  # every byte of the hello
            mangled = bytearray(stream)
            mangled[position] ^= 0xFF
            proto, events = self._drive(key16, engine, bytes(mangled))
            self._assert_failed_loudly(proto, events)
            assert proto.session is None, (
                f"byte {position}: partial session leaked from a "
                f"mutated handshake"
            )

    def test_open_state_mutations_fail_or_are_detected(self, key16, engine):
        stream, _ = wire_for(key16, engine, PAYLOADS)
        rng = random.Random(SEED)
        hello_size = len(wire_for(key16, engine, [])[0])
        positions = rng.sample(range(hello_size, len(stream)),
                               min(60, len(stream) - hello_size))
        for position in positions:
            mangled = bytearray(stream)
            mangled[position] ^= 1 << rng.randint(0, 7)
            proto, events = self._drive(key16, engine, bytes(mangled))
            payloads = [e.payload for e in events
                        if isinstance(e, PayloadReceived)]
            # A flipped bit may destroy framing (fail), corrupt a packet
            # (CRC/replay fail), or tear the stream (EOF mid-frame
            # fail) — but a mutated stream must never decrypt complete.
            assert payloads != PAYLOADS, (
                f"bit flip at {position} went completely undetected"
            )
            self._assert_failed_loudly(proto, events)

    def test_truncation_in_every_state_fails_at_eof(self, key16, engine):
        stream, _ = wire_for(key16, engine, PAYLOADS)
        rng = random.Random(SEED + 1)
        cuts = sorted(rng.sample(range(1, len(stream)), 40))
        for cut in cuts:
            proto, events = self._drive(key16, engine, stream[:cut])
            payloads = [e.payload for e in events
                        if isinstance(e, PayloadReceived)]
            if payloads == PAYLOADS:
                # Cut after the last frame: a clean close, not damage.
                continue
            self._assert_failed_loudly(proto, events)

    def test_inserted_junk_between_frames_fails(self, key16, engine):
        stream, _ = wire_for(key16, engine, [b"first"])
        proto = LinkProtocol(key16, "responder",
                             config=SessionConfig(engine=engine,
                                                  rekey_interval=3))
        events = list(proto.receive_data(stream))
        events.extend(proto.receive_data(b"\x00garbage between frames"))
        self._assert_failed_loudly(proto, events)
