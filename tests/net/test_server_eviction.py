"""SecureLinkServer's periodic metrics eviction sweep.

A long-running server whose connections wedge (or whose embedder never
calls ``metrics.remove``) must not grow its metrics table forever: the
eviction task folds idle sessions into the retired aggregates on a
period.  These tests pin the wiring, the disable knob, and validation.
"""

import asyncio

import pytest

from repro.net import SecureLinkServer


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


class TestEvictionLoop:
    def test_idle_sessions_are_swept(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0,
                                        metrics_eviction_s=0.05) as server:
                ghost = server.metrics.session("wedged-conn")
                ghost.rx.packets = 3  # some traffic, then silence
                for _ in range(40):  # up to 2 s for two sweep periods
                    await asyncio.sleep(0.05)
                    if "wedged-conn" not in server.metrics.sessions:
                        break
                assert "wedged-conn" not in server.metrics.sessions
                # Folded, not lost: the lifetime aggregate keeps it.
                _, rx = server.metrics.aggregate()
                assert rx.packets == 3
        run(body())

    def test_zero_disables_the_sweep(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0,
                                        metrics_eviction_s=0) as server:
                assert server._eviction_task is None
                server.metrics.session("keeper")
                await asyncio.sleep(0.1)
                assert "keeper" in server.metrics.sessions
        run(body())

    def test_negative_interval_rejected(self, key16):
        with pytest.raises(ValueError, match="metrics_eviction_s"):
            SecureLinkServer(key16, port=0, metrics_eviction_s=-1.0)

    def test_close_cancels_the_task(self, key16):
        async def body():
            server = SecureLinkServer(key16, port=0, metrics_eviction_s=60.0)
            await server.start()
            task = server._eviction_task
            assert task is not None and not task.done()
            await server.close()
            assert task.done()
        run(body())
