"""Tests for secure-link sessions: nonces, rekeying, replay windows."""

import pytest

from repro.core.errors import CipherFormatError, ReplayError, SessionError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.core.stream import ALGORITHM_HHEA, PacketHeader
from repro.net.session import (
    Session,
    SessionConfig,
    derive_epoch_key,
    key_fingerprint,
    nonce_for_seq,
    seq_for_nonce,
)

SID = b"\x01\x02\x03\x04\x05\x06\x07\x08"


def make_pair(key, config=None):
    """A correctly-paired initiator/responder session couple."""
    config = config or SessionConfig()
    return (Session(key, "initiator", SID, config),
            Session(key, "responder", SID, config))


class TestNonceSchedule:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_bijection_and_validity(self, width):
        seen = set()
        boundary = (1 << width) - 2
        max_seq = 0xFFFFFFFE if width >= 32 else 1 << 20
        probes = [seq for seq in
                  list(range(200)) + [boundary + d for d in range(-2, 3)]
                  if 0 <= seq <= max_seq]
        for seq in probes:
            nonce = nonce_for_seq(seq, width)
            assert nonce & ((1 << width) - 1) != 0
            assert nonce not in seen
            seen.add(nonce)
            assert seq_for_nonce(nonce, width) == seq

    def test_skips_lfsr_zero_state(self):
        # seq 65534 -> nonce 65535; seq 65535 must skip 0x10000.
        assert nonce_for_seq(65534, 16) == 0xFFFF
        assert nonce_for_seq(65535, 16) == 0x10001

    def test_monotonic(self):
        nonces = [nonce_for_seq(seq, 16) for seq in range(70000)]
        assert nonces == sorted(set(nonces))

    def test_exhaustion(self):
        with pytest.raises(SessionError, match="exhausted"):
            nonce_for_seq(0xFFFFFFFF, 32)

    def test_negative_seq(self):
        with pytest.raises(SessionError):
            nonce_for_seq(-1, 16)

    def test_bad_nonce_rejected_on_receive(self):
        with pytest.raises(SessionError):
            seq_for_nonce(0, 16)
        with pytest.raises(SessionError):
            seq_for_nonce(0x10000, 16)  # multiple of 2**16
        with pytest.raises(SessionError):
            seq_for_nonce(0x1_0000_0000, 16)


class TestKeyDerivation:
    def test_directions_get_distinct_keys(self, key16):
        i2r = derive_epoch_key(key16, SID, b"i->r", 0)
        r2i = derive_epoch_key(key16, SID, b"r->i", 0)
        assert i2r != r2i
        assert i2r != key16

    def test_sessions_get_distinct_keys(self, key16):
        a = derive_epoch_key(key16, b"AAAAAAAA", b"i->r", 0)
        b = derive_epoch_key(key16, b"BBBBBBBB", b"i->r", 0)
        assert a != b

    def test_epochs_get_distinct_keys(self, key16):
        assert derive_epoch_key(key16, SID, b"i->r", 0) != \
            derive_epoch_key(key16, SID, b"i->r", 1)

    def test_deterministic(self, key16):
        assert derive_epoch_key(key16, SID, b"i->r", 3) == \
            derive_epoch_key(key16, SID, b"i->r", 3)

    def test_fingerprint_distinguishes_keys(self, key16, key4):
        assert key_fingerprint(key16) != key_fingerprint(key4)
        assert len(key_fingerprint(key16)) == 8


class TestConfig:
    def test_rekey_interval_bounded_by_lfsr_period(self, key16):
        SessionConfig(rekey_interval=65535).validate(16)
        with pytest.raises(SessionError, match="period"):
            SessionConfig(rekey_interval=65536).validate(16)

    def test_rejects_bad_values(self, key16):
        with pytest.raises(SessionError):
            SessionConfig(rekey_interval=0).validate(16)
        with pytest.raises(SessionError):
            SessionConfig(algorithm=9).validate(16)
        with pytest.raises(SessionError):
            SessionConfig(max_payload=0).validate(16)

    def test_max_wire_payload_covers_worst_case_expansion(self, key16):
        # Worst case: every message bit costs one whole vector, i.e.
        # width wire bytes per plaintext byte.
        config = SessionConfig(max_payload=512)
        assert config.max_wire_payload(16) == 512 * 16

    def test_session_rejects_bad_role_and_id(self, key16):
        with pytest.raises(SessionError):
            Session(key16, "observer", SID)
        with pytest.raises(SessionError):
            Session(key16, "initiator", b"short")


class TestRoundTrip:
    def test_duplex_byte_exact(self, key16):
        a, b = make_pair(key16)
        for i in range(10):
            payload = bytes([i]) * (i + 3)
            assert b.decrypt(a.encrypt(payload)) == payload
            assert a.decrypt(b.encrypt(payload)) == payload

    def test_hhea_session(self, key16):
        config = SessionConfig(algorithm=ALGORITHM_HHEA)
        a, b = make_pair(key16, config)
        assert b.decrypt(a.encrypt(b"hhea payload")) == b"hhea payload"

    def test_wide_vectors(self):
        key = Key.generate(seed=3, params=VectorParams(32))
        a, b = make_pair(key)
        assert b.decrypt(a.encrypt(b"wide")) == b"wide"

    def test_oversized_payload_refused(self, key16):
        a, _ = make_pair(key16, SessionConfig(max_payload=8))
        with pytest.raises(SessionError, match="exceeds"):
            a.encrypt(b"nine bytes")


class TestNonceUniqueness:
    def test_sessions_never_reuse_a_nonce(self, key16):
        """Acceptance criterion: across rekeys, every (epoch key, masked
        nonce) pair a direction emits is unique — no hiding-vector stream
        is ever generated twice."""
        config = SessionConfig(rekey_interval=7)
        a, _ = make_pair(key16, config)
        seen = set()
        for i in range(100):
            packet = a.encrypt(b"x" * (i % 13))
            header = PacketHeader.unpack(packet)
            epoch = seq_for_nonce(header.nonce, 16) // config.rekey_interval
            effective = (epoch, header.nonce & 0xFFFF)
            assert effective not in seen, f"nonce reuse at packet {i}"
            seen.add(effective)
        assert len(seen) == 100

    def test_directions_draw_from_disjoint_keys(self, key16):
        # Same seq on both directions is safe: the working keys differ.
        a, b = make_pair(key16)
        pa = a.encrypt(b"same payload")
        pb = b.encrypt(b"same payload")
        assert PacketHeader.unpack(pa).nonce == PacketHeader.unpack(pb).nonce
        assert pa != pb


class TestRekeying:
    def test_rekey_after_n_packets(self, key16):
        config = SessionConfig(rekey_interval=5)
        a, b = make_pair(key16, config)
        payloads = [bytes([i]) * 4 for i in range(17)]
        for payload in payloads:
            assert b.decrypt(a.encrypt(payload)) == payload
        assert a.metrics.tx.rekeys == 3  # epochs 1, 2, 3
        assert b.metrics.rx.rekeys == 3

    def test_rekey_survives_packet_loss_across_epoch(self, key16):
        config = SessionConfig(rekey_interval=4)
        a, b = make_pair(key16, config)
        packets = [a.encrypt(bytes([i])) for i in range(12)]
        # Drop everything from seq 2..9: the receiver jumps two epochs.
        assert b.decrypt(packets[0]) == b"\x00"
        assert b.decrypt(packets[1]) == b"\x01"
        assert b.decrypt(packets[10]) == b"\x0a"
        assert b.metrics.rx.gaps == 8
        assert b.metrics.rx.rekeys == 2


class TestReplayDetection:
    def test_replay_rejected(self, key16):
        a, b = make_pair(key16)
        packet = a.encrypt(b"once")
        assert b.decrypt(packet) == b"once"
        with pytest.raises(ReplayError):
            b.decrypt(packet)
        assert b.metrics.rx.replays == 1

    def test_reordering_rejected(self, key16):
        a, b = make_pair(key16)
        first = a.encrypt(b"first")
        second = a.encrypt(b"second")
        assert b.decrypt(second) == b"second"
        with pytest.raises(ReplayError):
            b.decrypt(first)

    def test_gap_accepted_and_counted(self, key16):
        a, b = make_pair(key16)
        packets = [a.encrypt(bytes([i])) for i in range(5)]
        assert b.decrypt(packets[0]) == b"\x00"
        assert b.decrypt(packets[4]) == b"\x04"
        assert b.metrics.rx.gaps == 3

    def test_corrupted_nonce_bit_cannot_wedge_the_window(self, key16):
        # The packet CRC covers the header, so a flipped nonce bit is
        # rejected as damage instead of silently jumping the replay
        # window forward (which would make every later genuine packet
        # look like a replay).
        a, b = make_pair(key16)
        first = bytearray(a.encrypt(b"first"))
        first[8] ^= 0x04  # nonce 1 -> 5 (same epoch, same key)
        with pytest.raises(CipherFormatError, match="CRC"):
            b.decrypt(bytes(first))
        assert b.last_recv_seq == -1  # window untouched
        assert b.decrypt(a.encrypt(b"second")) == b"second"

    def test_corrupt_packet_does_not_advance_window(self, key16):
        a, b = make_pair(key16)
        packet = a.encrypt(b"fragile")
        damaged = bytearray(packet)
        damaged[-1] ^= 0xFF
        with pytest.raises(CipherFormatError):
            b.decrypt(bytes(damaged))
        assert b.metrics.rx.crc_failures == 1
        # The pristine copy of the same sequence number still decrypts.
        assert b.decrypt(packet) == b"fragile"

    def test_wrong_width_packet_rejected(self, key16):
        _, b = make_pair(key16)
        wide = Key.generate(seed=3, params=VectorParams(32))
        wide_sender = Session(wide, "initiator", SID)
        with pytest.raises(SessionError, match="32-bit"):
            b.decrypt(wide_sender.encrypt(b"wrong width"))

    def test_algorithm_switch_rejected(self, key16):
        _, b = make_pair(key16)
        hhea_a, _ = make_pair(key16, SessionConfig(algorithm=ALGORITHM_HHEA))
        with pytest.raises(SessionError, match="algorithm"):
            b.decrypt(hhea_a.encrypt(b"wrong algorithm"))


class TestMetricsAccounting:
    def test_counters_track_traffic(self, key16):
        a, b = make_pair(key16)
        wire = [a.encrypt(b"12345") for _ in range(4)]
        for packet in wire:
            b.decrypt(packet)
        assert a.metrics.tx.packets == 4
        assert a.metrics.tx.payload_bytes == 20
        assert a.metrics.tx.wire_bytes == sum(len(p) for p in wire)
        assert b.metrics.rx.packets == 4
        assert b.metrics.rx.payload_bytes == 20


class TestRootKeyValidation:
    def test_zero_length_root_key_raises_session_error(self, key16):
        # A hollowed-out key (no pairs) must be rejected at construction
        # with a clear SessionError, not fail deep inside the epoch-key
        # derivation on first use.
        key16.pairs = ()
        with pytest.raises(SessionError, match="no pairs"):
            Session(key16, "initiator", SID)

    def test_zero_length_root_key_error_names_the_cause(self, key16):
        key16.pairs = ()
        with pytest.raises(SessionError, match="key pair"):
            Session(key16, "responder", SID)


class TestEngineSelection:
    def test_fast_and_reference_sessions_interoperate(self, key16):
        # The engine is a purely local choice: packets are byte-identical,
        # so a fast initiator talks to a reference responder and back.
        fast = Session(key16, "initiator", SID, SessionConfig(engine="fast"))
        ref = Session(key16, "responder", SID, SessionConfig())
        assert ref.decrypt(fast.encrypt(b"fast to reference")) == b"fast to reference"
        assert fast.decrypt(ref.encrypt(b"reference to fast")) == b"reference to fast"

    def test_engines_emit_identical_wire_packets(self, key16):
        fast = Session(key16, "initiator", SID, SessionConfig(engine="fast"))
        ref = Session(key16, "initiator", SID, SessionConfig())
        for payload in (b"", b"x", b"a longer payload" * 9):
            assert fast.encrypt(payload) == ref.encrypt(payload)

    def test_unknown_engine_rejected(self, key16):
        with pytest.raises(SessionError, match="engine"):
            Session(key16, "initiator", SID, SessionConfig(engine="turbo"))


class TestDecryptBatch:
    """decrypt_batch == sequential decrypt, minus the per-packet overhead."""

    def test_matches_sequential_decrypt(self, key16):
        a, b = make_pair(key16)
        a2, b2 = make_pair(key16)
        payloads = [b"batch %d" % i for i in range(8)]
        packets = [a.encrypt(p) for p in payloads]
        assert b.decrypt_batch(packets) == payloads
        # Byte-for-byte the same session state as the sequential twin.
        for p in payloads:
            b2.decrypt(a2.encrypt(p))
        assert b.last_recv_seq == b2.last_recv_seq
        timing = ("elapsed_s", "rx_mbps", "tx_mbps")
        batched, sequential = b.metrics.snapshot(), b2.metrics.snapshot()
        for key in timing:
            batched.pop(key, None), sequential.pop(key, None)
        assert batched == sequential

    def test_empty_batch(self, key16):
        _, b = make_pair(key16)
        assert b.decrypt_batch([]) == []
        assert b.last_recv_seq == -1

    def test_accepts_memoryviews(self, key16):
        a, b = make_pair(key16)
        packets = [memoryview(a.encrypt(b"view %d" % i)) for i in range(3)]
        assert b.decrypt_batch(packets) == [b"view 0", b"view 1", b"view 2"]

    def test_replay_mid_batch_keeps_accepted_prefix(self, key16):
        a, b = make_pair(key16)
        packets = [a.encrypt(b"p%d" % i) for i in range(3)]
        accepted = []
        with pytest.raises(ReplayError):
            b.decrypt_batch([packets[0], packets[1], packets[0]],
                            accepted=accepted)
        assert accepted == [(b"p0", 0), (b"p1", 1)]
        # The prefix stayed committed: its slots are burned, later
        # genuine traffic still flows — exactly sequential semantics.
        with pytest.raises(ReplayError):
            b.decrypt(packets[1])
        assert b.decrypt(packets[2]) == b"p2"

    def test_damage_mid_batch_counts_crc_failure(self, key16):
        a, b = make_pair(key16)
        good = a.encrypt(b"good")
        bad = a.encrypt(b"bad")
        bad = bad[:-1] + bytes([bad[-1] ^ 0xFF])
        accepted = []
        with pytest.raises(CipherFormatError):
            b.decrypt_batch([good, bad], accepted=accepted)
        assert accepted == [(b"good", 0)]
        assert b.metrics.rx.crc_failures == 1

    def test_batch_crosses_rekey_boundary(self, key16):
        config = SessionConfig(rekey_interval=4)
        a, b = make_pair(key16, config)
        payloads = [b"epoch %d" % i for i in range(10)]
        packets = [a.encrypt(p) for p in payloads]
        assert b.decrypt_batch(packets) == payloads
        assert b.metrics.rx.rekeys == 2

    def test_batch_with_gaps(self, key16):
        a, b = make_pair(key16)
        packets = [a.encrypt(bytes([i])) for i in range(6)]
        assert b.decrypt_batch([packets[0], packets[2], packets[5]]) == [
            b"\x00", b"\x02", b"\x05"
        ]
        assert b.metrics.rx.gaps == 3
