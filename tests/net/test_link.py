"""End-to-end asyncio tests: handshake, echo, concurrency, shutdown."""

import asyncio

import pytest

from repro.core.errors import HandshakeError
from repro.core.key import Key
from repro.net import SecureLinkClient, SecureLinkServer, SessionConfig


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


SID = b"testsid\x00"


class TestEchoRoundTrip:
    def test_single_request(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    assert await client.request(b"ping") == b"ping"
        run(body())

    def test_multi_packet_message_byte_exact(self, key16):
        message = bytes(range(256)) * 40
        payloads = [message[i:i + 700] for i in range(0, len(message), 700)]

        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    replies = await client.send_all(payloads)
                    assert b"".join(replies) == message
                    assert client.metrics.rx.packets == len(payloads)
                # The server retires a session's slot when its connection
                # closes; the lifetime aggregate keeps the counts.
                _, rx = server.metrics.aggregate()
                assert rx.packets == len(payloads)
        run(body())

    def test_payload_near_max_survives_cipher_expansion(self, key16):
        # The cipher expands plaintext several-fold on the wire; the
        # receiving decoder must size its frame limit for the expanded
        # bytes, not the plaintext limit, or legal packets die here.
        config = SessionConfig(max_payload=512)
        payload = bytes(range(256)) + bytes(256)  # 512 bytes, the limit

        async def body():
            async with SecureLinkServer(key16, port=0, config=config) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            config=config,
                                            session_id=SID) as client:
                    assert await client.request(payload) == payload
                assert not server.errors
        run(body())

    def test_rekeying_over_the_wire(self, key16):
        config = SessionConfig(rekey_interval=3)
        payloads = [bytes([i]) * 10 for i in range(10)]

        async def body():
            async with SecureLinkServer(key16, port=0, config=config) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            config=config,
                                            session_id=SID) as client:
                    assert await client.send_all(payloads) == payloads
                    assert client.metrics.tx.rekeys == 3
                    assert client.metrics.rx.rekeys == 3
        run(body())

    def test_custom_handler(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0,
                                        handler=bytes.upper) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    assert await client.request(b"shout") == b"SHOUT"
        run(body())

    def test_async_handler(self, key16):
        async def reverse(payload: bytes) -> bytes:
            await asyncio.sleep(0)
            return payload[::-1]

        async def body():
            async with SecureLinkServer(key16, port=0,
                                        handler=reverse) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    assert await client.request(b"abc") == b"cba"
        run(body())


class TestConcurrentClients:
    def test_many_clients_interleaved(self, key16):
        async def one_client(port, tag):
            session_id = bytes([tag]) * 8
            async with SecureLinkClient(key16, port=port,
                                        session_id=session_id) as client:
                payloads = [bytes([tag, i]) * 30 for i in range(12)]
                assert await client.send_all(payloads) == payloads
                return client.metrics.rx.packets

        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                counts = await asyncio.gather(
                    *(one_client(server.port, tag) for tag in range(8))
                )
                assert counts == [12] * 8
                # Live slots retire as connections tear down, but the
                # lifetime session count and aggregates are stable.
                assert server.metrics.total_sessions == 8
                _, rx = server.metrics.aggregate()
                assert rx.packets == 96
        run(body())

    def test_sessions_are_isolated_per_connection(self, key16):
        # Two clients with different session ids produce different
        # ciphertext for the same plaintext and sequence number.
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=b"A" * 8) as one:
                    async with SecureLinkClient(key16, port=server.port,
                                                session_id=b"B" * 8) as two:
                        assert await one.request(b"same") == b"same"
                        assert await two.request(b"same") == b"same"
                        wire_one = one.session.encrypt(b"probe")
                        wire_two = two.session.encrypt(b"probe")
                        assert wire_one != wire_two
        run(body())


class TestHandshakeFailures:
    def test_wrong_key_is_rejected(self, key16):
        other = Key.generate(seed=4242, n_pairs=16)

        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                client = SecureLinkClient(other, port=server.port,
                                          session_id=SID)
                with pytest.raises(HandshakeError):
                    await client.connect()
                # connect() must have closed its own socket on failure.
                assert client._writer is None
                # let the server finish recording the failure
                await asyncio.sleep(0.05)
                assert any("fingerprint" in err for err in server.errors)
        run(body())

    def test_mismatched_rekey_interval_rejected(self, key16):
        async def body():
            server_config = SessionConfig(rekey_interval=100)
            client_config = SessionConfig(rekey_interval=200)
            async with SecureLinkServer(key16, port=0,
                                        config=server_config) as server:
                client = SecureLinkClient(key16, port=server.port,
                                          config=client_config, session_id=SID)
                with pytest.raises(HandshakeError):
                    await client.connect()
                await client.close()
        run(body())

    def test_double_connect_rejected(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID) as client:
                    with pytest.raises(Exception, match="already connected"):
                        await client.connect()
        run(body())


class TestShutdown:
    def test_close_with_live_connection(self, key16):
        async def body():
            server = SecureLinkServer(key16, port=0)
            await server.start()
            client = SecureLinkClient(key16, port=server.port, session_id=SID)
            await client.connect()
            assert await client.request(b"hello") == b"hello"
            await server.close()  # must not hang with the client still open
            await client.close()
        run(body())

    def test_server_close_is_idempotent(self, key16):
        async def body():
            server = SecureLinkServer(key16, port=0)
            await server.start()
            await server.close()
            await server.close()
        run(body())

    def test_protocol_error_closes_connection_not_server(self, key16):
        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                # A raw-socket peer that sends garbage after the handshake.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                good = SecureLinkClient(key16, port=server.port,
                                        session_id=SID)
                writer.write(b"\x00" * 64)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                assert server.errors  # the bad peer was recorded
                # ...and the server still serves well-behaved clients.
                async with good as client:
                    assert await client.request(b"still up") == b"still up"
        run(body())


class TestTransportLeaks:
    """Regression: every error path must release the StreamWriter."""

    def test_server_closes_writer_after_handshake_error(self, key16,
                                                        monkeypatch):
        from repro.net.server import SecureLinkServer as ServerClass

        writers = []
        original = ServerClass._serve_connection

        async def capture(self, reader, writer):
            writers.append(writer)
            await original(self, reader, writer)

        monkeypatch.setattr(ServerClass, "_serve_connection", capture)
        other = Key.generate(seed=5150, n_pairs=16)

        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                client = SecureLinkClient(other, port=server.port,
                                          session_id=SID)
                with pytest.raises(HandshakeError):
                    await client.connect()
                await asyncio.sleep(0.05)
                assert any("fingerprint" in err for err in server.errors)
            assert writers, "server never saw the connection"
            for writer in writers:
                assert writer.is_closing(), "leaked server-side transport"
            # The failed handshake must not register a metrics slot:
            # only completed sessions are accounted.
            assert server.metrics.sessions == {}
        run(body())

    def test_client_closes_writer_after_handshake_error(self, key16):
        other = Key.generate(seed=5151, n_pairs=16)

        async def body():
            async with SecureLinkServer(key16, port=0) as server:
                client = SecureLinkClient(other, port=server.port,
                                          session_id=SID)
                with pytest.raises(HandshakeError):
                    await client.connect()
                assert client._writer is None and client._reader is None
        run(body())

    def test_client_closes_writer_on_mid_stream_protocol_error(self, key16):
        # A server that completes the handshake and then speaks garbage:
        # the client's send_all must close its own transport before
        # re-raising, so a non-context-manager caller cannot leak it.
        from repro.net.framing import HELLO_SIZE, Hello
        from repro.net.session import key_fingerprint

        async def evil_server(reader, writer):
            hello = Hello.unpack(await reader.readexactly(HELLO_SIZE))
            reply = Hello(algorithm=hello.algorithm, width=hello.width,
                          session_id=hello.session_id,
                          fingerprint=key_fingerprint(key16),
                          rekey_interval=hello.rekey_interval)
            writer.write(reply.pack())
            await writer.drain()
            await reader.read(1 << 16)
            writer.write(b"\x00garbage instead of a packet frame\x00" * 4)
            await writer.drain()

        async def body():
            server = await asyncio.start_server(evil_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                client = SecureLinkClient(key16, port=port, session_id=SID)
                await client.connect()
                with pytest.raises(Exception):
                    await client.send_all([b"payload"])
                assert client._writer is None, (
                    "mid-stream protocol failure leaked the transport"
                )
        run(body())


class TestEngineKwarg:
    def test_engine_override_on_server_and_client(self, key16):
        # The convenience kwarg is equivalent to SessionConfig(engine=...)
        # and mixes freely across the two ends of one link.
        async def body():
            async with SecureLinkServer(key16, port=0,
                                        engine="fast") as server:
                async with SecureLinkClient(key16, port=server.port,
                                            session_id=SID,
                                            engine="reference") as client:
                    assert await client.request(b"mixed engines") == b"mixed engines"
                    assert client.session.config.engine == "reference"
            assert server.errors == []
        run(body())

    def test_engine_kwarg_validated(self, key16):
        from repro.core.errors import SessionError

        with pytest.raises(SessionError, match="engine"):
            SecureLinkServer(key16, engine="turbo")
        with pytest.raises(SessionError, match="engine"):
            SecureLinkClient(key16, engine="turbo")
