"""Tests for incremental stream framing and the hello frame."""

import pytest

from repro.core.errors import CipherFormatError
from repro.core.stream import ALGORITHM_MHHEA, HEADER_SIZE, encrypt_packet
from repro.net.framing import (
    HELLO_SIZE,
    Frame,
    FrameDecoder,
    Hello,
)

SID = b"\x10\x20\x30\x40\x50\x60\x70\x80"
FP = b"\xaa" * 8


def make_hello(**overrides):
    fields = dict(algorithm=ALGORITHM_MHHEA, width=16, session_id=SID,
                  fingerprint=FP, rekey_interval=1024)
    fields.update(overrides)
    return Hello(**fields)


def packet_stream(key, count):
    packets = [encrypt_packet(bytes([i] * (i + 1)), key, nonce=i + 1)
               for i in range(count)]
    return packets, b"".join(packets)


class TestHello:
    def test_roundtrip(self):
        hello = make_hello()
        blob = hello.pack()
        assert len(blob) == HELLO_SIZE
        assert Hello.unpack(blob) == hello

    def test_crc_detects_corruption(self):
        blob = bytearray(make_hello().pack())
        blob[10] ^= 0x01  # inside the session id
        with pytest.raises(CipherFormatError, match="CRC"):
            Hello.unpack(bytes(blob))

    def test_truncated(self):
        with pytest.raises(CipherFormatError, match="short"):
            Hello.unpack(make_hello().pack()[:-1])

    def test_bad_magic(self):
        blob = b"XXXX" + make_hello().pack()[4:]
        with pytest.raises(CipherFormatError, match="magic"):
            Hello.unpack(blob)

    def test_bad_algorithm_and_width(self):
        with pytest.raises(CipherFormatError):
            Hello.unpack(make_hello(algorithm=9).pack())
        with pytest.raises(CipherFormatError):
            Hello.unpack(make_hello(width=12).pack())


class TestFrameAccessors:
    def test_kind_mismatch_raises(self, key16):
        packet = encrypt_packet(b"x", key16)
        frame = Frame("packet", packet)
        assert frame.header().n_vectors > 0
        with pytest.raises(CipherFormatError):
            frame.hello()
        hello_frame = Frame("hello", make_hello().pack())
        assert hello_frame.hello() == make_hello()
        with pytest.raises(CipherFormatError):
            hello_frame.header()


class TestFrameDecoder:
    def test_whole_stream_at_once(self, key16):
        packets, stream = packet_stream(key16, 5)
        decoder = FrameDecoder()
        frames = decoder.feed(stream)
        assert [f.raw for f in frames] == packets
        assert all(f.kind == "packet" for f in frames)
        decoder.finish()

    def test_byte_at_a_time(self, key16):
        packets, stream = packet_stream(key16, 4)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(stream)):
            frames.extend(decoder.feed(stream[i:i + 1]))
        assert [f.raw for f in frames] == packets
        assert decoder.pending == 0

    def test_partial_header_carries_over(self, key16):
        packets, stream = packet_stream(key16, 1)
        decoder = FrameDecoder()
        assert decoder.feed(stream[:HEADER_SIZE - 3]) == []
        assert decoder.pending == HEADER_SIZE - 3
        frames = decoder.feed(stream[HEADER_SIZE - 3:])
        assert [f.raw for f in frames] == packets

    def test_hello_then_packets(self, key16):
        packets, stream = packet_stream(key16, 2)
        decoder = FrameDecoder()
        frames = decoder.feed(make_hello().pack() + stream)
        assert [f.kind for f in frames] == ["hello", "packet", "packet"]
        assert frames[0].hello() == make_hello()

    def test_truncated_stream_detected_at_eof(self, key16):
        _, stream = packet_stream(key16, 1)
        decoder = FrameDecoder()
        decoder.feed(stream[:-2])
        with pytest.raises(CipherFormatError, match="mid-frame"):
            decoder.finish()

    def test_corrupted_header_raises(self, key16):
        _, stream = packet_stream(key16, 1)
        damaged = b"JUNK" + stream[4:]
        with pytest.raises(CipherFormatError, match="magic"):
            FrameDecoder().feed(damaged)

    def test_bad_version_raises(self, key16):
        _, stream = packet_stream(key16, 1)
        damaged = bytearray(stream)
        damaged[4] = 99
        with pytest.raises(CipherFormatError, match="version"):
            FrameDecoder().feed(bytes(damaged))

    def test_corrupted_payload_crc_is_not_framings_problem(self, key16):
        # Framing only delimits; payload CRC is checked at decrypt time,
        # so a flipped payload byte still yields one complete frame.
        packets, stream = packet_stream(key16, 1)
        damaged = bytearray(stream)
        damaged[-1] ^= 0xFF
        frames = FrameDecoder().feed(bytes(damaged))
        assert len(frames) == 1
        assert frames[0].raw != packets[0]

    def test_oversized_payload_rejected_before_buffering(self, key16):
        stream = encrypt_packet(b"A" * 100, key16)
        decoder = FrameDecoder(max_payload=16)
        with pytest.raises(CipherFormatError, match="limit"):
            # Only the header is needed to reject: feed nothing else.
            decoder.feed(stream[:HEADER_SIZE])

    def test_trailing_garbage_raises(self, key16):
        _, stream = packet_stream(key16, 1)
        decoder = FrameDecoder()
        frames = decoder.feed(stream)
        assert len(frames) == 1
        with pytest.raises(CipherFormatError, match="magic"):
            decoder.feed(b"garbage!")

    def test_garbage_in_same_chunk_raises(self, key16):
        # A framing error is fatal for the stream: the whole chunk is
        # rejected, including any frame that preceded the junk.
        _, stream = packet_stream(key16, 1)
        with pytest.raises(CipherFormatError, match="magic"):
            FrameDecoder().feed(stream + b"garbage!")


class TestResync:
    def test_skips_leading_junk(self, key16):
        packets, stream = packet_stream(key16, 2)
        decoder = FrameDecoder(resync=True)
        frames = decoder.feed(b"\xde\xad\xbe\xef" + stream)
        assert [f.raw for f in frames] == packets
        assert decoder.bytes_skipped == 4

    def test_skips_junk_between_packets(self, key16):
        packets, _ = packet_stream(key16, 2)
        decoder = FrameDecoder(resync=True)
        frames = decoder.feed(packets[0] + b"?!x" + packets[1])
        assert [f.raw for f in frames] == packets
        assert decoder.bytes_skipped == 3

    def test_resync_across_chunk_boundaries(self, key16):
        packets, _ = packet_stream(key16, 2)
        wire = b"junkjunk" + packets[0] + b"MH" + packets[1]  # "MH" = magic prefix
        decoder = FrameDecoder(resync=True)
        frames = []
        for i in range(0, len(wire), 3):
            frames.extend(decoder.feed(wire[i:i + 3]))
        assert [f.raw for f in frames] == packets
        assert decoder.bytes_skipped == 10

    def test_resync_skips_oversized_packet(self, key16):
        small = encrypt_packet(b"ok", key16, nonce=5)
        big = encrypt_packet(b"B" * 64, key16, nonce=6)
        decoder = FrameDecoder(max_payload=32, resync=True)
        frames = decoder.feed(big + small)
        assert [f.raw for f in frames] == [small]
        assert decoder.bytes_skipped >= 1

    def test_resync_recovers_after_corrupt_header(self, key16):
        packets, _ = packet_stream(key16, 2)
        damaged = bytearray(packets[0])
        damaged[4] = 99  # bad version byte; magic still looks right
        decoder = FrameDecoder(resync=True)
        frames = decoder.feed(bytes(damaged) + packets[1])
        assert [f.raw for f in frames] == [packets[1]]


class TestZeroCopy:
    """The memoryview framing contract: no copies, durable views."""

    def test_adopted_chunk_is_not_copied(self, key16):
        # With nothing pending, feed() adopts the chunk as the owning
        # buffer outright: the frames are views *into the caller's
        # bytes object*, no intermediate buffer exists at all.
        packets, stream = packet_stream(key16, 3)
        frames = FrameDecoder().feed(stream)
        assert [f.raw for f in frames] == packets
        for frame in frames:
            assert isinstance(frame.raw, memoryview)
            assert frame.raw.obj is stream

    def test_one_owner_per_drain(self, key16):
        packets, stream = packet_stream(key16, 4)
        frames = FrameDecoder().feed(stream)
        owners = {id(f.raw.obj) for f in frames}
        assert len(owners) == 1

    def test_byte_dribble_views_stay_correct(self, key16):
        # 1-byte chunks force a compaction per feed; every emitted view
        # must still hold exactly its packet's bytes at the end.
        packets, stream = packet_stream(key16, 4)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(stream)):
            frames.extend(decoder.feed(stream[i:i + 1]))
        assert decoder.pending == 0
        assert [bytes(f.raw) for f in frames] == packets

    def test_held_frame_survives_later_compaction(self, key16):
        # The aliasing hazard: a consumer keeps frame 0 while the
        # decoder keeps compacting for later chunks.  Owners are
        # replaced, never mutated, so the held view must stay intact.
        packets, stream = packet_stream(key16, 3)
        decoder = FrameDecoder()
        split = len(packets[0]) + 5  # packet 0 + a partial packet 1
        held = decoder.feed(stream[:split])[0]
        assert decoder.pending == 5
        later = []
        for i in range(split, len(stream)):  # dribble: compacts each feed
            later.extend(decoder.feed(stream[i:i + 1]))
        assert bytes(held.raw) == packets[0]
        assert [bytes(f.raw) for f in later] == packets[1:]

    def test_resync_emits_views(self, key16):
        packets, _ = packet_stream(key16, 2)
        decoder = FrameDecoder(resync=True)
        frames = decoder.feed(b"\xde\xad" + packets[0] + b"!?" + packets[1])
        assert [bytes(f.raw) for f in frames] == packets
        assert all(isinstance(f.raw, memoryview) for f in frames)
        assert decoder.bytes_skipped == 4

    def test_reset_drops_pending_without_counting(self, key16):
        _, stream = packet_stream(key16, 1)
        decoder = FrameDecoder()
        decoder.feed(stream[:-3])
        assert decoder.pending > 0
        decoder.reset()
        assert decoder.pending == 0
        assert decoder.bytes_skipped == 0
        decoder.finish()  # clean state: EOF is legal again

    def test_reset_count_skipped_accounts_pending(self, key16):
        packets, stream = packet_stream(key16, 1)
        decoder = FrameDecoder(resync=True)
        decoder.feed(stream[:-3])
        dropped = decoder.pending
        decoder.reset(count_skipped=True)
        assert decoder.bytes_skipped == dropped
        # Cumulative counters survive reset: the next stream adds on.
        frames = decoder.feed(stream)
        assert [f.raw for f in frames] == packets
        assert decoder.bytes_skipped == dropped
        assert decoder.frames_decoded == 1
