"""Seeded byte-mutation fuzzing of :class:`repro.net.framing.FrameDecoder`.

The decoder sits directly on untrusted transport bytes, so its contract
under damage is the whole point: it may *only* ever raise
:class:`CipherFormatError` (the documented framing error) or — in resync
mode — silently skip junk, and with ``verify_crc=True`` it must never
emit a packet frame whose CRC does not check out.  The corpus applies
bit flips, truncation, duplication, junk prefixes/infixes and deletions
to valid hello+packet streams, then feeds the result in randomly sized
chunks.
"""

import os
import random

import pytest

from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.stream import encrypt_packet, verify_packet
from repro.net.framing import FrameDecoder, Hello
from repro.net.session import key_fingerprint

SEED = int(os.environ.get("REPRO_TEST_SEED", "20050307"))

#: Mutated streams per fuzzing mode.
ROUNDS = 400


def _build_stream(rng: random.Random, key: Key) -> tuple[bytes, int]:
    """A valid wire stream: one hello plus a handful of packets."""
    hello = Hello(
        algorithm=1,
        width=16,
        session_id=rng.randbytes(8),
        fingerprint=key_fingerprint(key),
        rekey_interval=rng.randint(1, 4096),
    )
    parts = [hello.pack()]
    n_packets = rng.randint(1, 5)
    for i in range(n_packets):
        payload = rng.randbytes(rng.randint(0, 40))
        parts.append(encrypt_packet(payload, key, nonce=i + 1, engine="fast"))
    return b"".join(parts), n_packets + 1


def _mutate(rng: random.Random, stream: bytes) -> bytes:
    """Apply 1-3 random mutations from the corpus operators."""
    data = bytearray(stream)
    for _ in range(rng.randint(1, 3)):
        op = rng.randrange(5)
        if not data:
            break
        if op == 0:  # bit flips
            for _ in range(rng.randint(1, 8)):
                position = rng.randrange(len(data))
                data[position] ^= 1 << rng.randrange(8)
        elif op == 1:  # truncation
            data = data[: rng.randrange(len(data) + 1)]
        elif op == 2:  # duplicate a slice in place
            start = rng.randrange(len(data))
            end = min(len(data), start + rng.randint(1, 40))
            data[start:start] = data[start:end]
        elif op == 3:  # junk prefix / infix
            junk = rng.randbytes(rng.randint(1, 24))
            position = rng.choice([0, rng.randrange(len(data) + 1)])
            data[position:position] = junk
        else:  # delete a slice
            start = rng.randrange(len(data))
            end = min(len(data), start + rng.randint(1, 24))
            del data[start:end]
    return bytes(data)


def _feed_in_chunks(rng: random.Random, decoder: FrameDecoder, data: bytes):
    """Feed ``data`` in random chunk sizes, collecting frames."""
    frames = []
    offset = 0
    while offset < len(data):
        size = rng.randint(1, 97)
        frames.extend(decoder.feed(data[offset : offset + size]))
        offset += size
    return frames


def _assert_frames_intact(frames) -> None:
    """Every emitted frame must survive full structural validation."""
    for frame in frames:
        if frame.kind == "packet":
            verify_packet(frame.raw)  # raises on any bad CRC leak
        else:
            assert frame.kind == "hello"
            Hello.unpack(frame.raw)


@pytest.fixture(scope="module")
def fuzz_key():
    return Key.generate(seed=2005, n_pairs=16)


class TestFrameDecoderFuzz:
    def test_clean_streams_decode_fully(self, fuzz_key):
        rng = random.Random(f"{SEED}:fuzz:clean")
        for _ in range(40):
            stream, n_frames = _build_stream(rng, fuzz_key)
            decoder = FrameDecoder(resync=rng.random() < 0.5, verify_crc=True)
            frames = _feed_in_chunks(rng, decoder, stream)
            decoder.finish()
            assert len(frames) == n_frames
            _assert_frames_intact(frames)
            assert decoder.bytes_skipped == 0

    def test_strict_mode_only_raises_cipher_format_error(self, fuzz_key):
        rng = random.Random(f"{SEED}:fuzz:strict")
        for _ in range(ROUNDS):
            stream, _ = _build_stream(rng, fuzz_key)
            mutated = _mutate(rng, stream)
            decoder = FrameDecoder(verify_crc=True)
            try:
                frames = _feed_in_chunks(rng, decoder, mutated)
                decoder.finish()
            except Exception as exc:  # noqa: BLE001 - the assertion itself
                assert isinstance(exc, CipherFormatError), repr(exc)
                continue
            _assert_frames_intact(frames)

    def test_resync_mode_never_raises_mid_stream(self, fuzz_key):
        rng = random.Random(f"{SEED}:fuzz:resync")
        for _ in range(ROUNDS):
            stream, _ = _build_stream(rng, fuzz_key)
            mutated = _mutate(rng, stream)
            decoder = FrameDecoder(resync=True, verify_crc=True)
            # Resync swallows damage by skipping; feed must never raise.
            frames = _feed_in_chunks(rng, decoder, mutated)
            _assert_frames_intact(frames)
            # Conservation: every input byte is framed, skipped or pending.
            framed = sum(len(f.raw) for f in frames)
            assert framed + decoder.bytes_skipped + decoder.pending == len(mutated)

    def test_resync_recovers_intact_tail_after_payload_corruption(self, fuzz_key):
        # Damage confined to the first packet's *payload* must never cost
        # the later ones: the CRC rejects the head and the decoder
        # re-locks on the next magic.  (A corrupted header *length* field
        # can legitimately swallow the tail into a phantom payload — the
        # inherent limit of length-prefixed framing.)
        rng = random.Random(f"{SEED}:fuzz:tail")
        for _ in range(60):
            head = encrypt_packet(rng.randbytes(20), fuzz_key, nonce=1,
                                  engine="fast")
            tail = [encrypt_packet(rng.randbytes(20), fuzz_key, nonce=n + 2,
                                   engine="fast") for n in range(3)]
            damaged = bytearray(head)
            damaged[rng.randrange(22, len(damaged))] ^= 0xFF
            decoder = FrameDecoder(resync=True, verify_crc=True)
            frames = _feed_in_chunks(rng, decoder, bytes(damaged) + b"".join(tail))
            raws = [f.raw for f in frames]
            for packet in tail:
                assert packet in raws

    def test_payload_bit_flip_never_emits_bad_crc_frame(self, fuzz_key):
        # The sharpest form of the contract: flip exactly one payload
        # bit; with verify_crc the frame must be rejected, not emitted.
        rng = random.Random(f"{SEED}:fuzz:crc")
        for _ in range(200):
            packet = encrypt_packet(rng.randbytes(rng.randint(1, 60)),
                                    fuzz_key, nonce=7, engine="fast")
            damaged = bytearray(packet)
            # Flip inside the payload region (after the 22-byte header).
            position = rng.randrange(22, len(damaged))
            damaged[position] ^= 1 << rng.randrange(8)
            strict = FrameDecoder(verify_crc=True)
            with pytest.raises(CipherFormatError, match="CRC"):
                strict.feed(bytes(damaged))
            lenient = FrameDecoder(resync=True, verify_crc=True)
            frames = lenient.feed(bytes(damaged))
            assert frames == []
            assert lenient.bytes_skipped >= 1

    def test_verify_crc_off_still_delimits(self, fuzz_key):
        # Documented default: framing only delimits, decrypt owns the CRC.
        packet = encrypt_packet(b"payload", fuzz_key, nonce=3)
        damaged = bytearray(packet)
        damaged[-1] ^= 0x01
        frames = FrameDecoder().feed(bytes(damaged))
        assert len(frames) == 1
        with pytest.raises(CipherFormatError, match="CRC"):
            verify_packet(frames[0].raw)
