"""Differential wire capture: the sans-IO refactor changed zero bytes.

The pre-refactor ``SecureLinkServer``/``SecureLinkClient`` built their
traffic directly from the primitives: the client wrote
``Hello(...).pack()`` then ``Session(root, "initiator", ...)`` packets
in order; the server validated the hello, echoed
``Hello(...).pack()`` with its own fingerprint, then
``Session(root, "responder", ...)`` packets.  That formula *is* the
legacy implementation, so these tests reconstruct it from the same
primitives (``legacy_client_wire`` / ``legacy_server_wire``), run the
*refactored* adapters against raw byte-capturing peers, and assert the
captured traffic is byte-identical — handshake plus N payloads,
crossing a rekey boundary, for both engines.  Any drift in the
LinkProtocol's framing, hello layout, nonce schedule or ratchet
sequencing fails here.
"""

import asyncio

import pytest

from repro.net import SecureLinkClient, SecureLinkServer
from repro.net.framing import HELLO_SIZE, Hello
from repro.net.session import Session, SessionConfig, key_fingerprint

SID = b"diffsid1"

ENGINES = ("reference", "fast")

#: Payloads crossing the rekey_interval=3 epoch boundary twice.
PAYLOADS = [bytes([i]) * (20 + i) for i in range(8)]

CONFIG_KWARGS = dict(rekey_interval=3)


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


def _hello(key, config, session_id):
    return Hello(
        algorithm=config.algorithm,
        width=key.params.width,
        session_id=session_id,
        fingerprint=key_fingerprint(key),
        rekey_interval=config.rekey_interval,
    )


def legacy_client_wire(key, config, payloads):
    """Every byte the pre-refactor client wrote for this conversation."""
    session = Session(key, "initiator", SID, config)
    return (_hello(key, config, SID).pack()
            + b"".join(session.encrypt(p) for p in payloads))


def legacy_server_wire(key, config, payloads):
    """Every byte the pre-refactor echo server wrote back."""
    session = Session(key, "responder", SID, config)
    return (_hello(key, config, SID).pack()
            + b"".join(session.encrypt(p) for p in payloads))


@pytest.mark.parametrize("engine", ENGINES)
def test_refactored_client_emits_legacy_bytes(key16, engine):
    """New client vs a raw socket server replaying the legacy script."""
    config = SessionConfig(engine=engine, **CONFIG_KWARGS)
    expected_in = legacy_client_wire(key16, config, PAYLOADS)
    scripted_out = legacy_server_wire(key16, config, PAYLOADS)
    captured = bytearray()

    async def scripted_server(reader, writer):
        # The legacy peer's exact behaviour, as a byte script: read the
        # hello, reply, then echo one scripted packet per inbound packet
        # while recording every byte the client sends.
        captured.extend(await reader.readexactly(HELLO_SIZE))
        writer.write(scripted_out[:HELLO_SIZE])
        await writer.drain()
        offset = HELLO_SIZE
        while len(captured) < len(expected_in):
            chunk = await reader.read(1 << 16)
            if not chunk:
                break
            captured.extend(chunk)
            # Ship the scripted echoes in proportion: one reply packet
            # per fully-received request packet, like the echo loop did.
            done = _packets_complete(bytes(captured[HELLO_SIZE:]))
            target = _nth_packet_end(scripted_out, HELLO_SIZE, done)
            if target > offset:
                writer.write(scripted_out[offset:target])
                await writer.drain()
                offset = target
        writer.close()

    async def body():
        server = await asyncio.start_server(scripted_server, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            async with SecureLinkClient(key16, port=port, config=config,
                                        session_id=SID) as client:
                replies = await client.send_all(PAYLOADS)
        assert replies == PAYLOADS  # the new client accepts legacy echoes

    run(body())
    assert bytes(captured) == expected_in


def _packets_complete(stream: bytes) -> int:
    """How many whole packets ``stream`` holds (prefix parse)."""
    from repro.core.stream import HEADER_SIZE, PacketHeader

    count, offset = 0, 0
    while offset + HEADER_SIZE <= len(stream):
        header = PacketHeader.unpack(stream[offset:offset + HEADER_SIZE])
        total = HEADER_SIZE + header.payload_size
        if offset + total > len(stream):
            break
        offset += total
        count += 1
    return count


def _nth_packet_end(stream: bytes, start: int, n: int) -> int:
    """Byte offset just past the ``n``-th packet after ``start``."""
    from repro.core.stream import HEADER_SIZE, PacketHeader

    offset = start
    for _ in range(n):
        header = PacketHeader.unpack(stream[offset:offset + HEADER_SIZE])
        offset += HEADER_SIZE + header.payload_size
    return offset


@pytest.mark.parametrize("engine", ENGINES)
def test_refactored_server_emits_legacy_bytes(key16, engine):
    """New server vs a raw socket client speaking the legacy script."""
    config = SessionConfig(engine=engine, **CONFIG_KWARGS)
    client_script = legacy_client_wire(key16, config, PAYLOADS)
    expected_out = legacy_server_wire(key16, config, PAYLOADS)

    async def body():
        async with SecureLinkServer(key16, port=0, config=config) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                writer.write(client_script)
                await writer.drain()
                captured = await reader.readexactly(len(expected_out))
                # Nothing extra may follow the scripted reply bytes.
                writer.write_eof()
                assert await reader.read() == b""
            finally:
                writer.close()
                await writer.wait_closed()
            assert server.errors == []
            return captured

    assert run(body()) == expected_out


@pytest.mark.parametrize("engine", ENGINES)
def test_link_protocol_emits_legacy_bytes_standalone(key16, engine):
    """The machine itself, no transport at all, matches the formula."""
    from repro.link import LinkProtocol, PayloadReceived

    config = SessionConfig(engine=engine, **CONFIG_KWARGS)
    initiator = LinkProtocol(key16, "initiator", config=config,
                             session_id=SID)
    responder = LinkProtocol(key16, "responder", config=config)

    client_bytes = bytearray(initiator.data_to_send())
    responder.receive_data(bytes(client_bytes))
    server_bytes = bytearray(responder.data_to_send())
    initiator.receive_data(bytes(server_bytes))
    for payload in PAYLOADS:
        initiator.send_payload(payload)
        packet = initiator.data_to_send()
        client_bytes.extend(packet)
        [event] = responder.receive_data(packet)
        assert isinstance(event, PayloadReceived)
        responder.send_payload(event.payload)
        server_bytes.extend(responder.data_to_send())

    assert bytes(client_bytes) == legacy_client_wire(key16, config, PAYLOADS)
    assert bytes(server_bytes) == legacy_server_wire(key16, config, PAYLOADS)
