"""Tests for the link metrics layer (deterministic via a fake clock)."""

import pytest

from repro.net.metrics import DirectionCounters, MetricsRegistry, SessionMetrics


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestSessionMetrics:
    def test_mbps_from_payload_bytes(self):
        clock = FakeClock()
        metrics = SessionMetrics(clock)
        metrics.rx.payload_bytes = 1_000_000
        metrics.rx.wire_bytes = 1_500_000
        clock.now += 2.0
        assert metrics.mbps("rx") == pytest.approx(4.0)
        assert metrics.wire_mbps("rx") == pytest.approx(6.0)
        assert metrics.mbps("tx") == 0.0

    def test_elapsed_never_zero(self):
        metrics = SessionMetrics(FakeClock())
        assert metrics.elapsed() > 0

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            SessionMetrics(FakeClock()).mbps("sideways")

    def test_snapshot_keys(self):
        metrics = SessionMetrics(FakeClock())
        metrics.tx.packets = 3
        snap = metrics.snapshot()
        assert snap["tx_packets"] == 3
        assert snap["rx_packets"] == 0
        assert "rx_mbps" in snap and "elapsed_s" in snap

    def test_render_mentions_both_directions(self):
        text = SessionMetrics(FakeClock()).render("mylink")
        assert "mylink" in text
        assert "tx" in text and "rx" in text


class TestDirectionCounters:
    def test_add_accumulates_every_field(self):
        a = DirectionCounters(packets=1, payload_bytes=10, wire_bytes=20,
                              crc_failures=1, replays=2, gaps=3, rekeys=4)
        b = DirectionCounters(packets=2, payload_bytes=5, wire_bytes=7,
                              crc_failures=1, replays=1, gaps=1, rekeys=1)
        a.add(b)
        assert a == DirectionCounters(packets=3, payload_bytes=15,
                                      wire_bytes=27, crc_failures=2,
                                      replays=3, gaps=4, rekeys=5)

    def test_overhead_ratio(self):
        counters = DirectionCounters(payload_bytes=100, wire_bytes=150)
        assert counters.overhead_ratio == pytest.approx(1.5)
        assert DirectionCounters().overhead_ratio == 0.0


class TestRegistry:
    def test_session_slots_are_stable(self):
        registry = MetricsRegistry(FakeClock())
        first = registry.session("peer-0")
        assert registry.session("peer-0") is first

    def test_aggregate_sums_sessions(self):
        registry = MetricsRegistry(FakeClock())
        registry.session("a").rx.packets = 2
        registry.session("b").rx.packets = 5
        registry.session("b").tx.payload_bytes = 11
        tx, rx = registry.aggregate()
        assert rx.packets == 7
        assert tx.payload_bytes == 11

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry(FakeClock())
        assert registry.render() == "no sessions"
        registry.session("peer-0").rx.packets = 1
        text = registry.render()
        assert "peer-0" in text and "total" in text


class TestRegistryEviction:
    """The registry must stay bounded by *concurrent* sessions."""

    def test_remove_folds_counters_into_lifetime_aggregate(self):
        registry = MetricsRegistry(FakeClock())
        registry.session("a").record_rx(100, 150)
        registry.session("a").record_tx(40, 60)
        registry.session("b").record_rx(10, 15)
        registry.remove("a")
        assert "a" not in registry.sessions
        assert registry.retired_count == 1
        assert registry.total_sessions == 2  # one live + one retired
        tx, rx = registry.aggregate()
        assert rx.packets == 2
        assert rx.payload_bytes == 110
        assert tx.payload_bytes == 40

    def test_remove_unknown_name_is_a_noop(self):
        registry = MetricsRegistry(FakeClock())
        registry.remove("never-registered")
        assert registry.retired_count == 0
        assert registry.total_sessions == 0

    def test_dict_stays_bounded_under_churn(self):
        registry = MetricsRegistry(FakeClock())
        for i in range(1000):
            registry.session(f"peer-{i}").record_rx(1, 2)
            registry.remove(f"peer-{i}")
        assert registry.sessions == {}
        assert registry.retired_count == 1000
        _, rx = registry.aggregate()
        assert rx.packets == 1000

    def test_evict_idle_retires_only_stale_sessions(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock)
        registry.session("old").record_rx(1, 2)
        clock.now += 30.0
        registry.session("fresh").record_rx(1, 2)
        evicted = registry.evict_idle(idle_s=10.0)
        assert evicted == ["old"]
        assert list(registry.sessions) == ["fresh"]
        assert registry.total_sessions == 2
        _, rx = registry.aggregate()
        assert rx.packets == 2  # retired counters still aggregate

    def test_idle_resets_on_activity(self):
        clock = FakeClock()
        metrics = SessionMetrics(clock)
        clock.now += 5.0
        assert metrics.idle() == pytest.approx(5.0)
        metrics.record_tx(1, 2)
        assert metrics.idle() == 0.0

    def test_render_shows_retired_row(self):
        registry = MetricsRegistry(FakeClock())
        registry.session("a").record_rx(3, 5)
        registry.remove("a")
        text = registry.render()
        assert "retired" in text
        assert "total" in text
        assert registry.render() != "no sessions"
