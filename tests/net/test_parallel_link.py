"""The secure link with process-pool offload enabled.

Two properties matter: the wire bytes are identical to a non-parallel
endpoint (peers cannot tell what the other side runs), and a link
configured with ``parallel_workers`` still delivers every payload
byte-exactly through handshake, rekeying and replay protection.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import SessionError
from repro.net import (
    SecureLinkClient,
    SecureLinkServer,
    Session,
    SessionConfig,
)
from repro.parallel import EncryptionPool

SESSION_ID = b"PARLINK0"


def run(coro):
    return asyncio.run(coro)


class TestSessionConfigValidation:
    def test_rejects_negative_workers(self, key16):
        with pytest.raises(SessionError):
            SessionConfig(parallel_workers=-1).validate(16)

    def test_rejects_non_positive_threshold(self, key16):
        with pytest.raises(SessionError):
            SessionConfig(parallel_threshold=0).validate(16)

    def test_defaults_validate(self):
        SessionConfig().validate(16)


class TestEncryptBatch:
    def test_pool_batch_matches_serial_encrypts(self, key16):
        config = SessionConfig(parallel_threshold=64)
        parallel = Session(key16, "initiator", SESSION_ID, config=config)
        serial = Session(key16, "initiator", SESSION_ID,
                         config=SessionConfig())
        payloads = [bytes([i]) * (32 + 48 * i) for i in range(8)]
        with EncryptionPool(2) as pool:
            batch = parallel.encrypt_batch(payloads, pool=pool)
        assert batch == [serial.encrypt(p) for p in payloads]
        assert parallel.next_send_seq == serial.next_send_seq
        assert (parallel.metrics.tx.payload_bytes
                == serial.metrics.tx.payload_bytes)

    def test_batch_crosses_rekey_epochs_identically(self, key16):
        config = SessionConfig(rekey_interval=3, parallel_threshold=1)
        parallel = Session(key16, "initiator", SESSION_ID, config=config)
        serial = Session(key16, "initiator", SESSION_ID, config=config)
        payloads = [bytes([i]) * 24 for i in range(8)]
        with EncryptionPool(1) as pool:
            batch = parallel.encrypt_batch(payloads, pool=pool)
        assert batch == [serial.encrypt(p) for p in payloads]
        assert parallel.metrics.tx.rekeys == serial.metrics.tx.rekeys == 2

    def test_batch_without_pool_runs_inline(self, key16):
        session = Session(key16, "initiator", SESSION_ID)
        serial = Session(key16, "initiator", SESSION_ID)
        payloads = [b"one", b"two", b"three"]
        assert session.encrypt_batch(payloads) == [serial.encrypt(p)
                                                   for p in payloads]

    def test_oversized_payload_rejected_before_state_change(self, key16):
        config = SessionConfig(max_payload=16)
        session = Session(key16, "initiator", SESSION_ID, config=config)
        with pytest.raises(SessionError):
            session.encrypt_batch([b"ok", b"x" * 17])
        assert session.next_send_seq == 0  # all-or-nothing

    def test_receiver_decrypts_batch_output(self, key16):
        config = SessionConfig(parallel_threshold=8)
        sender = Session(key16, "initiator", SESSION_ID, config=config)
        receiver = Session(key16, "responder", SESSION_ID, config=config)
        payloads = [bytes([i]) * 64 for i in range(5)]
        with EncryptionPool(2) as pool:
            packets = sender.encrypt_batch(payloads, pool=pool)
        assert [receiver.decrypt(p) for p in packets] == payloads


class TestAsyncSessionOffload:
    def test_async_paths_match_sync_wire_output(self, key16):
        config = SessionConfig(parallel_threshold=64)
        sync_session = Session(key16, "initiator", SESSION_ID)
        payloads = [b"small", b"L" * 4096]

        async def scenario() -> list[bytes]:
            session = Session(key16, "initiator", SESSION_ID, config=config)
            with EncryptionPool(1) as pool:
                return [await session.encrypt_async(p, pool)
                        for p in payloads]

        assert run(scenario()) == [sync_session.encrypt(p) for p in payloads]

    def test_decrypt_async_enforces_replay_window(self, key16):
        from repro.core.errors import ReplayError

        sender = Session(key16, "initiator", SESSION_ID)
        packet = sender.encrypt(b"once only")

        async def scenario() -> bytes:
            receiver = Session(key16, "responder", SESSION_ID)
            payload = await receiver.decrypt_async(packet, None)
            with pytest.raises(ReplayError):
                await receiver.decrypt_async(packet, None)
            return payload

        assert run(scenario()) == b"once only"


class TestParallelLink:
    def test_echo_with_parallel_workers_both_ends(self, key16):
        config = SessionConfig(parallel_workers=1, parallel_threshold=1024)
        payloads = [b"tiny", bytes(range(256)) * 24, b"x" * 5000]

        async def scenario() -> list[bytes]:
            async with SecureLinkServer(key16, port=0,
                                        config=config) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            config=config,
                                            session_id=SESSION_ID) as client:
                    return await client.send_all(payloads)

        assert run(scenario()) == payloads

    def test_parallel_client_against_plain_server(self, key16):
        """Offload is local: a non-parallel peer must interoperate."""
        client_config = SessionConfig(parallel_workers=1,
                                      parallel_threshold=512)
        payloads = [b"m" * 2048, b"n" * 100]

        async def scenario() -> list[bytes]:
            async with SecureLinkServer(key16, port=0) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            config=client_config,
                                            session_id=SESSION_ID) as client:
                    return await client.send_all(payloads)

        assert run(scenario()) == payloads

    def test_client_reconnect_after_failure_keeps_offload(self, key16):
        """A retried connect() must rebuild the pool close() tore down."""
        from repro.core.errors import HandshakeError
        from repro.core.key import Key

        config = SessionConfig(parallel_workers=1, parallel_threshold=256)
        payload = b"q" * 2048

        async def scenario() -> bytes:
            async with SecureLinkServer(key16, port=0) as server:
                client = SecureLinkClient(key16, port=server.port,
                                          config=config,
                                          session_id=SESSION_ID)
                wrong = SecureLinkClient(Key.generate(seed=9, n_pairs=4),
                                         port=server.port, config=config)
                with pytest.raises(HandshakeError):
                    await wrong.connect()  # close() tears its pool down
                await client.connect()
                try:
                    reply = await client.request(payload)
                finally:
                    await client.close()
                # The failed client can retry and still offload.
                retry = SecureLinkClient(key16, port=server.port,
                                         config=config,
                                         session_id=b"PARLINK1")
                await retry.connect()
                try:
                    assert await retry.request(payload) == payload
                    assert retry._pool is not None
                finally:
                    await retry.close()
                return reply

        assert run(scenario()) == payload

    def test_server_restart_rebuilds_pool(self, key16):
        """close() then start() must serve offloaded payloads again."""
        config = SessionConfig(parallel_workers=1, parallel_threshold=256)
        payload = b"r" * 2048

        async def scenario() -> bytes:
            server = SecureLinkServer(key16, port=0, config=config)
            await server.start()
            await server.close()
            await server.start()  # explicitly allowed; needs a live pool
            try:
                async with SecureLinkClient(key16, port=server.port,
                                            config=config,
                                            session_id=SESSION_ID) as client:
                    return await client.request(payload)
            finally:
                await server.close()

        assert run(scenario()) == payload

    def test_metrics_account_offloaded_traffic(self, key16):
        config = SessionConfig(parallel_workers=1, parallel_threshold=256)
        payload = b"p" * 4096

        async def scenario():
            async with SecureLinkServer(key16, port=0,
                                        config=config) as server:
                async with SecureLinkClient(key16, port=server.port,
                                            config=config,
                                            session_id=SESSION_ID) as client:
                    await client.request(payload)
                    return client.metrics.snapshot()

        snapshot = run(scenario())
        assert snapshot["tx_payload_bytes"] == len(payload)
        assert snapshot["rx_payload_bytes"] == len(payload)
        assert snapshot["rx_crc_failures"] == 0
