"""Cross-transport invariants: one schedule, memory and real UDP."""

from repro.scenario import TrafficMix
from repro.scenario.udp import MATRIX_FAULTS, run_transport_matrix


class TestTransportMatrix:
    def test_same_schedule_same_results_on_both_transports(self):
        result = run_transport_matrix()
        assert result["ok"], result["problems"]
        assert result["memory"]["oracle_ok"]
        for field in ("delivered", "accepted_packets",
                      "datagrams_dropped", "bytes_skipped"):
            assert result["memory"][field] == result["udp"][field], field
        # The default schedule must actually exercise the fault paths.
        assert result["memory"]["datagrams_dropped"] > 0

    def test_clean_schedule_delivers_everything_on_both(self):
        result = run_transport_matrix(
            mix=TrafficMix.soak(40, seed=31, duplex=False), faults={})
        assert result["ok"], result["problems"]
        assert result["memory"]["delivered"] == 40
        assert result["udp"]["delivered"] == 40
        assert result["udp"]["datagrams_dropped"] == 0

    def test_default_faults_cover_every_family(self):
        assert set(MATRIX_FAULTS) == {"loss", "duplicate", "corrupt",
                                      "truncate", "delay"}
