"""Cross-transport kex invariants: memory vs real asyncio TCP."""

import pytest

from repro.scenario.tcp import MATRIX_MODES, run_tcp_matrix


@pytest.fixture(scope="module")
def matrix():
    """One full run; every test reads the same result document."""
    return run_tcp_matrix(messages=24, rekey_interval=8)


class TestTcpMatrix:
    def test_matrix_is_green(self, matrix):
        assert matrix["ok"], matrix["problems"]

    def test_every_mode_ran_on_both_transports(self, matrix):
        for transport in ("memory", "tcp"):
            assert set(matrix[transport]) >= set(MATRIX_MODES)

    def test_transports_negotiate_identically(self, matrix):
        for mode in MATRIX_MODES:
            assert matrix["memory"][mode]["mode"] == mode
            assert matrix["tcp"][mode]["mode"] == mode

    def test_counters_match_the_schedule(self, matrix):
        for transport in ("memory", "tcp"):
            for mode in MATRIX_MODES:
                entry = matrix[transport][mode]
                assert entry["echoed"], (transport, mode)
                assert entry["rx_packets"] == matrix["messages"]
                assert entry["tx_rekeys"] == (matrix["messages"] - 1) // 8

    def test_resumption_mints_fresh_session_roots(self, matrix):
        for transport in ("memory", "tcp"):
            resumed = matrix[transport]["resume"]
            assert resumed["fingerprint"] != resumed["full_fingerprint"]
            assert resumed["ticket_issued"]

    def test_downgrade_probe_refused_not_fallen_back(self, matrix):
        assert not matrix["downgrade"]["connected"]
        assert matrix["downgrade"]["error"]
