"""Long-soak regression: 10k messages through corruption, many epochs.

Marked ``soak`` and excluded from the tier-1 run (``pytest.ini`` adds
``-m "not soak"``); run explicitly with ``pytest -m soak``.  The CI
workflow gives it its own job so tier-1 stays fast.
"""

import pytest

from repro.core.key import Key
from repro.net.session import Session, SessionConfig
from repro.scenario import (
    DIRECTIONS,
    FaultyLink,
    Scenario,
    TrafficMix,
    run_scenario,
)

pytestmark = pytest.mark.soak

#: Messages per direction; with this interval the run crosses 9 epochs.
SOAK_MESSAGES = 10_000
REKEY_INTERVAL = 1024


class TestSoak:
    def test_soak_survives_corruption_bursts(self):
        """Duplex soak under corruption: truthful counters, no wedge.

        The soak mix sends in 32-message bursts; at a 0.2 corrupt rate
        every burst statistically carries a clump of damaged datagrams,
        so each rekey epoch is crossed under corruption fire.
        """
        mix = TrafficMix.soak(SOAK_MESSAGES, seed=41)
        scenario = Scenario(
            name="soak-corruption", mix=mix,
            faults={"corrupt": 0.2, "loss": 0.05, "duplicate": 0.05},
            rekey_interval=REKEY_INTERVAL, fault_seed=414243)
        result = run_scenario(scenario)
        assert result.ok, result.problems[:5]
        for direction in DIRECTIONS:
            ledger = result.to_dict()["directions"][direction]
            assert ledger["sent"] == SOAK_MESSAGES
            assert ledger["epochs_crossed"] >= 3
            assert ledger["rekeys"] == ledger["epochs_crossed"]
            assert ledger["dropped"]["crc"] > 0
            assert ledger["faults"]["corrupt"] > SOAK_MESSAGES // 10

    def test_soak_fault_free_control_wire_is_byte_identical(self):
        """Control arm: same mix, no faults — every frame byte-exact.

        The sent frames must equal an independent reference session
        encrypting the same payloads in order, proving the harness adds
        zero wire perturbation even at soak scale.
        """
        mix = TrafficMix.soak(SOAK_MESSAGES, seed=41, duplex=False)
        root = Key.generate(seed=2005)
        link = FaultyLink(root,
                          config=SessionConfig(rekey_interval=REKEY_INTERVAL))
        session_id = link.handshake()
        link.run_mix(mix)
        assert link.verify() == []
        assert link.probe() == []
        payloads = mix.payloads("i2r")
        assert [p for p, _ in link.delivered["i2r"]] == payloads
        reference = Session(root, role="initiator", session_id=session_id,
                            config=SessionConfig(
                                rekey_interval=REKEY_INTERVAL))
        expected = [reference.encrypt(payload) for payload in payloads]
        assert [record.frame for record in link.sent["i2r"]] == expected
