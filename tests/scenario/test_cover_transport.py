"""Tests for the stego cover-traffic transport framing."""

import pytest

from repro.core.key import Key
from repro.scenario import CoverCodec, FaultyLink, TrafficMix
from repro.scenario.cover import COVER_HEADER, COVER_MAGIC


@pytest.fixture
def stego_key():
    return Key.generate(seed=2005)


class TestRoundTrip:
    @pytest.mark.parametrize("datagram", [
        b"", b"x", b"a typical link frame worth of bytes" * 3,
        bytes(range(256)),
    ])
    def test_wrap_unwrap_identity(self, stego_key, datagram):
        tx = CoverCodec(stego_key)
        rx = CoverCodec(stego_key)
        assert rx.unwrap(tx.wrap(datagram)) == datagram
        assert rx.undecodable == 0

    def test_frames_deterministic(self, stego_key):
        a = CoverCodec(stego_key, cover_seed=99)
        b = CoverCodec(stego_key, cover_seed=99)
        for datagram in (b"one", b"two", b"three"):
            assert a.wrap(datagram) == b.wrap(datagram)

    def test_per_frame_cover_differs(self, stego_key):
        codec = CoverCodec(stego_key)
        assert codec.wrap(b"same bytes") != codec.wrap(b"same bytes")
        assert codec.frames_wrapped == 2

    def test_wrap_never_exhausts_cover(self, stego_key):
        # Cover is sized to the guaranteed capacity floor, so even a
        # worst-case datagram embeds without CoverExhaustedError.
        codec = CoverCodec(stego_key)
        big = bytes(2000)
        assert CoverCodec(stego_key).unwrap(codec.wrap(big)) == big


class TestErrorPaths:
    def test_short_header_undecodable(self, stego_key):
        codec = CoverCodec(stego_key)
        assert codec.unwrap(b"COV") is None
        assert codec.undecodable == 1

    def test_bad_magic_undecodable(self, stego_key):
        tx = CoverCodec(stego_key)
        frame = bytearray(tx.wrap(b"payload"))
        frame[:4] = b"NOPE"
        rx = CoverCodec(stego_key)
        assert rx.unwrap(bytes(frame)) is None
        assert rx.undecodable == 1

    def test_truncated_frame_undecodable(self, stego_key):
        tx = CoverCodec(stego_key)
        frame = tx.wrap(b"payload")
        rx = CoverCodec(stego_key)
        assert rx.unwrap(frame[:-5]) is None
        assert rx.undecodable == 1

    def test_vector_count_overrunning_data_undecodable(self, stego_key):
        tx = CoverCodec(stego_key)
        frame = bytearray(tx.wrap(b"payload"))
        magic, n_bits, n_vectors, data_len = COVER_HEADER.unpack_from(frame)
        COVER_HEADER.pack_into(frame, 0, magic, n_bits,
                               data_len, data_len)  # vectors > words
        rx = CoverCodec(stego_key)
        assert rx.unwrap(bytes(frame)) is None
        assert rx.undecodable == 1

    def test_inconsistent_geometry_undecodable(self, stego_key):
        tx = CoverCodec(stego_key)
        frame = bytearray(tx.wrap(b"payload"))
        magic, n_bits, n_vectors, data_len = COVER_HEADER.unpack_from(frame)
        # n_bits not a whole number of bytes: no sender produces this.
        COVER_HEADER.pack_into(frame, 0, magic, n_bits + 3, n_vectors,
                               data_len)
        rx = CoverCodec(stego_key)
        assert rx.unwrap(bytes(frame)) is None
        assert rx.undecodable == 1

    def test_unwrap_never_raises_on_noise(self, stego_key):
        from repro.util.rng import random_bytes

        rx = CoverCodec(stego_key)
        for seed in range(20):
            noise = random_bytes(seed, 64 + seed)
            out = rx.unwrap(noise)
            assert out is None or isinstance(out, bytes)

    def test_wrong_key_still_parses_to_wrong_bytes(self, stego_key):
        # A wrong stego key yields garbage bytes, not an exception: the
        # inner link protocol's accounting is what rejects them.
        frame = CoverCodec(stego_key).wrap(b"secret datagram")
        other = CoverCodec(Key.generate(seed=999))
        out = other.unwrap(frame)
        assert out is not None
        assert out != b"secret datagram"
        assert other.undecodable == 0


class TestCoverTransport:
    def test_clean_cover_link_delivers_everything(self, stego_key):
        link = FaultyLink(stego_key, cover=True)
        link.handshake()
        mix = TrafficMix.duplex(12, seed=13)
        link.run_mix(mix)
        assert link.verify() == []
        for direction in ("i2r", "r2i"):
            assert [p for p, _ in link.delivered[direction]] == \
                mix.payloads(direction)
        assert link.probe() == []

    def test_cover_frames_hide_link_framing(self, stego_key):
        from repro.net.framing import HELLO_MAGIC

        codec = CoverCodec(stego_key)
        frame = codec.wrap(HELLO_MAGIC + b"rest of a hello")
        assert not frame.startswith(HELLO_MAGIC)
        assert frame.startswith(COVER_MAGIC)
