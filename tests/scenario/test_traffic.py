"""Tests for the deterministic traffic mixes."""

import pytest

from repro.scenario import DIRECTIONS, TrafficMix


class TestValidation:
    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            TrafficMix("bad", [[("sideways", b"x")]])

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            TrafficMix("bad", [[("i2r", "a string")]])

    def test_payloads_direction_validated(self):
        mix = TrafficMix.imix(3)
        with pytest.raises(ValueError, match="direction"):
            mix.payloads("up")


class TestConstructors:
    def test_imix_deterministic(self):
        assert TrafficMix.imix(20, seed=4).rounds == \
            TrafficMix.imix(20, seed=4).rounds

    def test_imix_sizes_are_imix(self):
        sizes = {len(p) for p in TrafficMix.imix(60, seed=1).payloads("i2r")}
        assert sizes <= {40, 576, 1500}
        assert len(sizes) > 1

    def test_bursty_shape(self):
        mix = TrafficMix.bursty(4, 8, seed=2)
        assert len(mix.rounds) == 4
        assert all(len(round_) == 8 for round_ in mix.rounds)

    def test_duplex_both_directions_every_round(self):
        mix = TrafficMix.duplex(10, seed=3)
        for round_ in mix.rounds:
            assert [direction for direction, _ in round_] == ["i2r", "r2i"]
        assert len(mix.payloads("i2r")) == len(mix.payloads("r2i")) == 10

    def test_soak_counts(self):
        mix = TrafficMix.soak(100, seed=5, burst_len=32)
        assert len(mix.payloads("i2r")) == 100
        assert len(mix.payloads("r2i")) == 100  # duplex by default
        assert mix.total_messages == 200
        simplex = TrafficMix.soak(100, seed=5, duplex=False)
        assert simplex.payloads("r2i") == []
        assert simplex.total_messages == 100

    def test_soak_payloads_stay_small(self):
        mix = TrafficMix.soak(200, seed=6)
        assert all(8 <= len(p) <= 64 for p in mix.payloads("i2r"))


class TestIntrospection:
    def test_totals_agree_with_payloads(self):
        mix = TrafficMix.duplex(15, seed=7)
        assert mix.total_messages == sum(
            len(mix.payloads(d)) for d in DIRECTIONS)
        assert mix.total_bytes == sum(
            len(p) for d in DIRECTIONS for p in mix.payloads(d))

    def test_payloads_are_defensive_bytes(self):
        source = bytearray(b"mutable")
        mix = TrafficMix("m", [[("i2r", source)]])
        source[0] = 0
        assert mix.payloads("i2r") == [b"mutable"]
