"""Active-attacker coverage: injections, the attack battery, and the
attacker entries of the committed scenario matrix."""

import pytest

from repro.core.key import Key
from repro.net.session import SessionConfig
from repro.scenario import (
    ATTACK_KINDS,
    FaultyLink,
    Scenario,
    TrafficMix,
    run_kex_attacks,
    run_scenario,
    standard_matrix,
)


def make_link(**kwargs):
    link = FaultyLink(Key.generate(seed=2005),
                      config=SessionConfig(rekey_interval=32), **kwargs)
    link.handshake()
    return link


class TestInject:
    def test_replayed_hello_lands_in_the_late_hello_bucket(self):
        link = make_link()
        assert link.inject("i2r", "replay-hello") == "late-hello"
        assert link.verify() == []

    def test_replayed_data_lands_in_the_replay_window(self):
        link = make_link()
        link.run_mix(TrafficMix.imix(10, seed=3))
        assert link.inject("i2r", "replay-data") == "replay"
        assert link.verify() == []

    def test_forged_hello_cannot_renegotiate_an_open_link(self):
        link = make_link()
        assert link.inject("i2r", "forge-hello") == "late-hello"
        assert link.verify() == []

    def test_forged_junk_is_unframeable(self):
        link = make_link()
        assert link.inject("r2i", "forge-junk") == "unframeable"
        assert link.verify() == []

    def test_spliced_kex_hello_is_dropped_not_answered(self):
        link = make_link()
        fate = link.inject("i2r", "forge-kex")
        assert fate == "late-hello"
        # The responder produced no reply bytes for the splice: the
        # reverse direction saw no new sends.
        assert link.sent["r2i"] == []
        assert link.verify() == []

    def test_injections_are_counted_per_kind(self):
        link = make_link()
        link.inject("i2r", "replay-hello")
        link.inject("i2r", "replay-hello")
        link.inject("r2i", "forge-junk")
        assert link.attacks["i2r"] == {"replay-hello": 2}
        assert link.attacks["r2i"] == {"forge-junk": 1}

    def test_unknown_kind_rejected(self):
        link = make_link()
        with pytest.raises(Exception, match="attack kind"):
            link.inject("i2r", "bitflip-everything")

    def test_replay_without_a_prior_send_is_an_error(self):
        link = make_link()
        with pytest.raises(Exception, match="no i2r data datagram"):
            link.inject("i2r", "replay-data")


class TestAttackScenarios:
    @pytest.fixture(scope="class")
    def attacker_results(self):
        matrix = {s.name: s for s in standard_matrix()}
        names = [n for n in matrix if n.startswith("attacker-")]
        return {name: run_scenario(matrix[name]) for name in names}

    def test_matrix_carries_the_attacker_battery(self, attacker_results):
        assert set(attacker_results) == {
            "attacker-replay", "attacker-forge", "attacker-under-fire"}

    def test_every_attacker_scenario_reconciles(self, attacker_results):
        for name, result in attacker_results.items():
            assert result.ok, f"{name}: {result.problems}"

    def test_injections_show_up_in_the_ledger(self, attacker_results):
        forge = attacker_results["attacker-forge"].to_dict()
        counted = {}
        for direction in ("i2r", "r2i"):
            for kind, n in forge["directions"][direction]["attacks"].items():
                counted[kind] = counted.get(kind, 0) + n
        assert counted == {"forge-hello": 2, "forge-junk": 2, "forge-kex": 2}

    def test_attack_scenarios_are_deterministic(self):
        scenario = Scenario("det", TrafficMix.duplex(24, seed=5),
                            attacks=(("i2r", "replay-hello"),
                                     ("r2i", "forge-junk")))
        assert run_scenario(scenario).to_dict() == \
            run_scenario(scenario).to_dict()

    def test_attack_kinds_constant_matches_the_forge_table(self):
        link = make_link()
        link.run_mix(TrafficMix.duplex(8, seed=6))
        for kind in ATTACK_KINDS:
            link.inject("i2r", kind)
        assert sorted(link.attacks["i2r"]) == sorted(ATTACK_KINDS)


class TestKexAttackBattery:
    @pytest.fixture(scope="class")
    def battery(self):
        return run_kex_attacks()

    def test_battery_is_green(self, battery):
        assert battery["ok"], battery["problems"]

    def test_battery_covers_the_contract(self, battery):
        names = {check["name"] for check in battery["checks"]}
        # Downgrade, tamper, splice, and ticket families must all run.
        for needle in ("downgrade", "tamper", "splice", "ticket"):
            assert any(needle in name for name in names), needle

    def test_every_check_reports_a_verdict(self, battery):
        for check in battery["checks"]:
            assert check["ok"], check
