"""Tests for the seeded fault schedules: determinism, fates, replay."""

import pytest

from repro.scenario import FAULT_KINDS, Delivery, FaultSchedule


def _datagrams(n, size=24):
    return [bytes([i % 256]) * size for i in range(n)]


class TestValidation:
    @pytest.mark.parametrize("kind", ["loss", "duplicate", "corrupt",
                                      "truncate", "delay"])
    def test_rate_out_of_range_rejected(self, kind):
        with pytest.raises(ValueError, match="rate must be in"):
            FaultSchedule(1, **{kind: 1.5})
        with pytest.raises(ValueError, match="rate must be in"):
            FaultSchedule(1, **{kind: -0.1})

    def test_rates_summing_over_one_rejected(self):
        with pytest.raises(ValueError, match="sum to"):
            FaultSchedule(1, loss=0.5, corrupt=0.6)

    def test_delay_span_and_max_flips_floors(self):
        with pytest.raises(ValueError, match="delay_span"):
            FaultSchedule(1, delay_span=0)
        with pytest.raises(ValueError, match="max_flips"):
            FaultSchedule(1, max_flips=0)


class TestDeterminism:
    def test_same_seed_same_fates_and_bytes(self):
        kwargs = dict(loss=0.2, duplicate=0.1, corrupt=0.15,
                      truncate=0.05, delay=0.1)
        a = FaultSchedule(99, **kwargs)
        b = FaultSchedule(99, **kwargs)
        out_a = a.apply_all(_datagrams(200)) + a.flush()
        out_b = b.apply_all(_datagrams(200)) + b.flush()
        assert a.trace == b.trace
        assert out_a == out_b  # Delivery is a frozen dataclass: == is deep

    def test_replay_rebuilds_identical_schedule(self):
        a = FaultSchedule(7, loss=0.3, corrupt=0.2, delay=0.1, delay_span=5)
        out_a = a.apply_all(_datagrams(100))
        b = a.replay()
        assert b.seed == a.seed and b.rates == a.rates
        assert b.apply_all(_datagrams(100)) == out_a
        assert b.trace == a.trace

    def test_different_seeds_diverge(self):
        a = FaultSchedule(1, loss=0.5)
        b = FaultSchedule(2, loss=0.5)
        a.apply_all(_datagrams(100))
        b.apply_all(_datagrams(100))
        assert a.trace != b.trace

    def test_fates_independent_of_content(self):
        a = FaultSchedule(5, loss=0.4)
        b = FaultSchedule(5, loss=0.4)
        a.apply_all(_datagrams(50, size=8))
        b.apply_all([b"completely different bytes"] * 50)
        assert [e.kind for e in a.trace] == [e.kind for e in b.trace]


class TestFates:
    def test_pure_loss(self):
        s = FaultSchedule(3, loss=1.0)
        assert s.apply_all(_datagrams(20)) == []
        assert s.counts["loss"] == 20

    def test_pure_duplicate(self):
        s = FaultSchedule(3, duplicate=1.0)
        out = s.apply_all(_datagrams(10))
        assert len(out) == 20
        assert all(not d.tampered for d in out)
        # Both copies carry the origin index of the same original.
        assert [d.origin for d in out] == [i // 2 for i in range(20)]

    def test_corrupt_always_changes_bytes(self):
        s = FaultSchedule(11, corrupt=1.0, max_flips=2)
        originals = _datagrams(100, size=6)
        out = s.apply_all(originals)
        assert len(out) == 100
        for original, delivery in zip(originals, out):
            assert delivery.tampered
            assert delivery.data != original
            assert len(delivery.data) == len(original)

    def test_truncate_always_shortens_to_prefix(self):
        s = FaultSchedule(13, truncate=1.0)
        originals = _datagrams(50)
        for original, delivery in zip(originals, s.apply_all(originals)):
            assert delivery.tampered
            assert len(delivery.data) < len(original)
            assert original.startswith(delivery.data)

    def test_delay_holds_then_releases_in_span(self):
        s = FaultSchedule(17, delay=1.0, delay_span=3)
        out = s.apply_all(_datagrams(30))
        late = s.flush()
        assert len(out) + len(late) == 30
        assert s.held == 0
        # A delayed datagram reappears within delay_span of its slot.
        for event in s.trace:
            (release,) = event.detail
            assert event.index < release <= event.index + 1 + 3

    def test_empty_datagram_always_delivers(self):
        s = FaultSchedule(19, loss=1.0)
        out = s.apply(b"")
        assert out == [Delivery(0, b"", tampered=False)]
        assert s.counts["deliver"] == 1

    def test_counts_cover_every_kind(self):
        s = FaultSchedule(23, loss=0.2, duplicate=0.2, corrupt=0.2,
                          truncate=0.2, delay=0.1)
        s.apply_all(_datagrams(300))
        assert set(s.counts) == set(FAULT_KINDS)
        assert sum(s.counts.values()) == 300
        assert all(s.counts[k] > 0 for k in FAULT_KINDS)

    def test_filter_adapter_returns_raw_bytes(self):
        s = FaultSchedule(29, duplicate=1.0)
        out = s.filter(b"datagram-bytes")
        assert out == [b"datagram-bytes", b"datagram-bytes"]
        assert all(isinstance(x, bytes) for x in out)
