"""The relay flood battery must pass with exact reconciliation."""

from repro.obs import core as _obs
from repro.scenario import run_relay_floods


def test_relay_flood_battery_is_clean():
    result = run_relay_floods()
    assert result["problems"] == []
    assert result["ok"] is True
    names = [check["name"] for check in result["checks"]]
    assert names == ["connection-flood", "slowloris", "stalled-readers"]


def test_shed_ledgers_are_exact_not_bounds():
    """The battery's value is the `==`: assert the exact shed shape of
    every check so a silently drifting counter fails loudly here."""
    result = run_relay_floods()
    by_name = {check["name"]: check for check in result["checks"]}
    flood = by_name["connection-flood"]
    assert flood["shed"] == {"handshake-rate": 30, "global-quota": 5}
    assert flood["admitted"] == 24
    assert flood["attempts"] == 59
    assert by_name["slowloris"]["shed"] == {"handshake-timeout": 8}
    assert by_name["slowloris"]["attackers"] == 8
    assert by_name["stalled-readers"]["drops"] == 12


def test_battery_restores_the_obs_registry():
    before = _obs.get_registry()
    run_relay_floods()
    assert _obs.get_registry() is before


def test_battery_is_deterministic_across_runs():
    a = run_relay_floods(seed=7)
    b = run_relay_floods(seed=7)
    assert [c["shed"] for c in a["checks"]] == [c["shed"] for c in b["checks"]]
