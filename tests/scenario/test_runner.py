"""Tests for the scenario runner: invariants, determinism, no wedging."""

import pytest

from repro.core.key import Key
from repro.net.session import SessionConfig
from repro.scenario import (
    DIRECTIONS,
    FaultSchedule,
    FaultyLink,
    ReferenceReceiver,
    Scenario,
    TrafficMix,
    run_scenario,
    run_stream_control,
    standard_matrix,
)


@pytest.fixture(scope="module")
def matrix_results():
    """Run the committed battery once; every test reads the results."""
    return [(scenario, run_scenario(scenario))
            for scenario in standard_matrix()]


class TestStandardMatrix:
    def test_every_scenario_reconciles(self, matrix_results):
        for scenario, result in matrix_results:
            assert result.ok, f"{scenario.name}: {result.problems}"
            assert result.problems == []

    def test_matrix_names_unique(self, matrix_results):
        names = [scenario.name for scenario, _ in matrix_results]
        assert len(names) == len(set(names))

    def test_ledgers_account_for_every_send(self, matrix_results):
        for scenario, result in matrix_results:
            for direction in DIRECTIONS:
                ledger = result.directions[direction]
                assert ledger["sent"] == len(
                    scenario.mix.payloads(direction))
                if ledger["faults"] is None:  # clean direction
                    assert ledger["delivered"] == ledger["sent"]
                else:  # every sent datagram got a fate decision
                    assert sum(ledger["faults"].values()) == ledger["sent"]

    def test_clean_scenario_delivers_everything(self, matrix_results):
        by_name = {s.name: r for s, r in matrix_results}
        clean = by_name["clean-duplex"].directions
        for direction in DIRECTIONS:
            assert clean[direction]["delivered"] == clean[direction]["sent"]
            assert clean[direction]["dropped"] == {
                kind: 0 for kind in ReferenceReceiver.DROP_KINDS}

    def test_hostile_scenarios_actually_drop(self, matrix_results):
        by_name = {s.name: r for s, r in matrix_results}
        hostile = by_name["hostile-mix"].directions["i2r"]
        assert hostile["delivered"] < hostile["sent"]
        assert sum(hostile["dropped"].values()) > 0

    def test_cover_scenario_crosses_epochs(self, matrix_results):
        by_name = {s.name: r for s, r in matrix_results}
        cover = by_name["cover-hostile"].directions
        assert all(cover[d]["epochs_crossed"] >= 1 for d in DIRECTIONS)

    def test_rekeys_equal_epochs_crossed(self, matrix_results):
        # Receiver state commits only on authenticated packets, so the
        # rekey counter is exactly the epochs genuine traffic crossed —
        # corruption storms included.
        for _, result in matrix_results:
            for direction in DIRECTIONS:
                ledger = result.directions[direction]
                assert ledger["rekeys"] == ledger["epochs_crossed"]


class TestDeterminism:
    def test_same_scenario_same_result_dict(self):
        scenario = Scenario(name="repeat", mix=TrafficMix.imix(60, seed=21),
                            faults={"loss": 0.2, "corrupt": 0.1},
                            fault_seed=77)
        assert run_scenario(scenario).to_dict() == \
            run_scenario(scenario).to_dict()

    def test_fault_seed_changes_the_run(self):
        base = dict(name="seeded", mix=TrafficMix.imix(60, seed=21),
                    faults={"loss": 0.3})
        a = run_scenario(Scenario(fault_seed=1, **base)).to_dict()
        b = run_scenario(Scenario(fault_seed=2, **base)).to_dict()
        assert a["directions"]["i2r"]["trace_digest"] != \
            b["directions"]["i2r"]["trace_digest"]


class TestFaultyLink:
    def test_probe_round_trips_after_storm(self):
        link = FaultyLink(Key.generate(seed=2005),
                          config=SessionConfig(rekey_interval=32),
                          i2r_faults=FaultSchedule(5, loss=0.3, corrupt=0.2),
                          r2i_faults=FaultSchedule(6, loss=0.3, corrupt=0.2))
        link.handshake()
        link.run_mix(TrafficMix.duplex(40, seed=9))
        link.flush()
        assert link.verify() == []
        assert link.probe() == []

    def test_verify_reports_unflushed_delays_as_clean(self):
        # Held delayed datagrams never reached the receiver, so neither
        # side counts them: verify() still reconciles without flush().
        link = FaultyLink(Key.generate(seed=2005),
                          i2r_faults=FaultSchedule(8, delay=0.5))
        link.handshake()
        link.run_mix(TrafficMix.imix(30, seed=2))
        assert link.verify() == []

    def test_bad_direction_rejected(self):
        link = FaultyLink(Key.generate(seed=2005))
        link.handshake()
        with pytest.raises(Exception, match="direction"):
            link.send("up", b"x")


class TestStreamControl:
    def test_control_run_is_byte_exact(self):
        result = run_stream_control()
        assert result["ok"], result["problems"]
        assert result["rekeys"] == {"i2r": 2, "r2i": 2}
        assert result["bytes_after_close"] > 0
        assert all(result["wire_bytes"][d] > 0 for d in DIRECTIONS)

    def test_control_run_deterministic(self):
        assert run_stream_control() == run_stream_control()
