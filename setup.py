"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable builds fail with ``invalid command 'bdist_wheel'``.  All
project metadata lives in ``pyproject.toml``; this file only exists so the
legacy ``setup.py develop`` code path is available.
"""

from setuptools import setup

setup()
