"""The sans-IO secure link: one protocol, four transports.

Drives the same `repro.link.LinkProtocol` state machine four ways —
raw (bring-your-own-transport), in-memory, blocking sockets and
best-effort UDP — without a single asyncio import, then shows the
replay window absorbing a datagram replay.  Compare with
`examples/secure_link.py`, which runs the asyncio transport; every
transport here emits byte-identical wire.

Run with::

    PYTHONPATH=src python examples/sans_io_link.py
"""

import repro
from repro.link import PayloadReceived


def raw_machines(codec) -> None:
    """No transport at all: feed bytes by hand, the protocol does the rest."""
    client = codec.link("initiator", session_id=b"RAWLINK1")
    server = codec.link("responder")

    server.receive_data(client.data_to_send())       # client hello →
    client.receive_data(server.data_to_send())       # ← server hello
    client.send_payload(b"bring your own transport")
    [event] = server.receive_data(client.data_to_send())
    assert isinstance(event, PayloadReceived)
    print(f"raw machines:   {event.payload!r} (seq {event.seq})")


def memory_transport(codec) -> None:
    """Deterministic in-process link — no sockets, no threads, no loop."""
    server = repro.serve(codec, transport="memory")
    with repro.connect(codec, transport="memory", server=server) as client:
        reply = client.request(b"in-process round trip")
        print(f"memory:         {reply!r} at "
              f"{client.metrics.mbps('rx'):.2f} Mbps")


def sync_transport(codec) -> None:
    """Blocking sockets: the edge-device shape, still the same wire."""
    with repro.serve(codec, transport="sync") as server:
        with repro.connect(codec, port=server.port,
                           transport="sync") as client:
            reply = client.request(b"no event loop here")
            print(f"sync sockets:   {reply!r} via port {server.port}")


def udp_transport(codec) -> None:
    """Best-effort datagrams: the replay window does the reordering work."""
    with repro.serve(codec, transport="udp") as server:
        with repro.connect(codec, port=server.port,
                           transport="udp") as client:
            replies = client.send_all([b"dgram one", b"dgram two"])
            print(f"udp datagrams:  {replies!r}")
            # Replay the last packet by hand: the server's replay window
            # silently drops it instead of breaking the link.
            proto = client._proto
            proto.send_packet(client.session.encrypt(b"fresh"))
            [datagram] = proto.datagrams_to_send()
            client._sock.send(datagram)
            client._sock.send(datagram)  # the replay
            reply = client._sock.recv(65535)
            [event] = proto.receive_datagram(reply)
            print(f"after replay:   {event.payload!r} "
                  f"(link still OPEN: {proto.state})")


def main() -> None:
    key = repro.Key.generate(seed=42)
    with repro.open_codec(key, engine="fast", rekey_interval=8) as codec:
        raw_machines(codec)
        memory_transport(codec)
        sync_transport(codec)
        udp_transport(codec)


if __name__ == "__main__":
    main()
