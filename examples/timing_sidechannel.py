"""The timing side channel: why the paper reworked the serial design.

An observer timestamps ciphertext outputs on the link.  Against the
serial HHEA design the inter-output gap is 1 + window width, a direct
function of the key pair; against the improved design it is a constant
two cycles.  This script mounts the attack on both and prints what the
attacker learns.

Run with::

    python examples/timing_sidechannel.py
"""

from repro.analysis.workloads import message_bits
from repro.core.key import Key
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.security.timing_attack import timing_attack


def main() -> None:
    key = Key.generate(seed=77)
    traffic = message_bits(4096, seed=1)
    print("secret key spans  :", [pair.span for pair in key.pairs])

    serial_run = HheaSerialCycleModel(key).run(traffic)
    report = timing_attack(serial_run, key)
    print("\n--- serial HHEA micro-architecture [SAEB04a] ---")
    print("recovered spans   :", report.recovered_spans)
    print(f"accuracy          : {report.accuracy:.0%}")
    print(f"key entropy lost  : {report.entropy_reduction_bits():.1f} bits "
          f"of {2 * 3 * len(key)}")

    improved_run = MhheaCycleModel(key).run(traffic)
    report = timing_attack(improved_run, key)
    print("\n--- improved MHHEA micro-architecture (this paper) ---")
    print("recovered spans   :", report.recovered_spans)
    print(f"accuracy          : {report.accuracy:.0%} (chance: every gap "
          f"is the constant 2-cycle CIRC/ENCRYPT loop)")

    gaps = {b - a for a, b in zip(improved_run.ready_cycles,
                                  improved_run.ready_cycles[1:])}
    print("observed gaps     :", sorted(gaps),
          "(2 = steady state; larger = buffer reloads)")


if __name__ == "__main__":
    main()
