"""Steganography mode: hide a message inside cover data.

The paper (section VI): "if the random vector is loaded with multimedia
cover data, one can immediately realize that the micro-architecture is
used for hiding as well as scrambling data."  Here the cover is a
synthetic 8-bit audio-ish waveform; the message is embedded in the
key-selected window bits of consecutive 16-bit cover words, and the
distortion is measured.

Run with::

    python examples/stego_cover.py
"""

import math

from repro.core.key import Key
from repro.stego.cover import (
    cover_capacity_bits,
    embed_in_cover,
    extract_from_cover,
    mean_distortion,
)
from repro.stego.shuffler import Shuffler


def synthetic_cover(n_samples: int = 8192) -> bytes:
    """A quantised sum of sines — stands in for PCM audio cover data."""
    samples = bytearray()
    for i in range(n_samples):
        value = (
            60 * math.sin(i / 17.0)
            + 40 * math.sin(i / 5.3)
            + 20 * math.sin(i / 2.1)
        )
        samples.append(int(value) % 256)
    return bytes(samples)


def main() -> None:
    key = Key.generate(seed=42)
    cover = synthetic_cover()
    message = b"the cargo ships at 3am, pier 14"

    print(f"cover: {len(cover)} bytes, guaranteed capacity "
          f"{cover_capacity_bits(cover, key)} bits")

    stego = embed_in_cover(message, cover, key)
    print(f"embedded {stego.n_bits} message bits into {stego.n_vectors} "
          f"cover words")
    print(f"distortion: {mean_distortion(cover, stego):.2f} flipped bits "
          f"per used 16-bit word (upper bytes untouched)")

    recovered = extract_from_cover(stego, key)
    assert recovered == message
    print("extracted:", recovered.decode())

    # Optional second layer: the STS shuffler permutes the stego words
    # under its own key ("shuffled-type steganography").
    shuffler = Shuffler(key_seed=0x1357, block=16)
    words = [stego.data[i : i + 2] for i in range(0, stego.n_vectors * 2, 2)]
    shuffled = shuffler.shuffle(words)
    print(f"shuffled {len(shuffled)} stego words for transport")
    assert shuffler.unshuffle(shuffled) == words
    print("unshuffle restored the stream")


if __name__ == "__main__":
    main()
