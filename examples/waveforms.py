"""Regenerate the paper's simulation figures (Figs 5-8) as waveforms.

Runs the cycle-accurate model over the paper's stimuli, prints the ASCII
timing diagrams, and writes a standard VCD next to this script for
GTKWave.

Run with::

    python examples/waveforms.py
"""

import pathlib

from repro.core.key import Key
from repro.hdl.wave import render_wave
from repro.rtl import states
from repro.rtl.cycle_model import MhheaCycleModel, ScriptedVectorSource
from repro.util.bits import int_to_bits


def figs_5_to_7() -> None:
    key = Key.generate(seed=2005)
    model = MhheaCycleModel(key)
    run = model.run(int_to_bits(0xABCD1234, 32), seed=0xACE1,
                    record_trace=True)
    trace = run.trace

    print("=== Fig 5: plaintext 0xABCD1234 loaded during LMSG ===")
    print(render_wave(trace, 0, 4,
                      signals=["state", "plaintext", "msg_cache"]))
    print()

    lkey = trace.find("state", states.LKEY)
    print("=== Fig 6: key pairs loaded in parallel per address ===")
    print(render_wave(trace, lkey, lkey + 7,
                      signals=["state", "key_addr", "key_left", "key_right"]))
    print()

    cache = trace.find("state", states.LMSGCACHE)
    print("=== Fig 7: low 16 bits enter the alignment buffer ===")
    print(render_wave(trace, cache - 1, cache + 2,
                      signals=["state", "msg_cache", "buffer"]))
    print()

    vcd_path = pathlib.Path(__file__).with_name("mhhea_run.vcd")
    vcd_path.write_text(trace.to_vcd())
    print(f"full trace written to {vcd_path} "
          f"({len(trace)} cycles, open with GTKWave)")


def fig_8() -> None:
    # The paper's worked example: pair (0,3), V=0xCA06, buffer 0x48D0.
    key = Key([(0, 3)])
    source = ScriptedVectorSource([0xCA06] + [0xFFFF] * 24)
    run = MhheaCycleModel(key).run(int_to_bits(0x48D0, 16), source=source,
                                   record_trace=True)
    print("=== Fig 8: Circ/Encrypt worked example ===")
    print(render_wave(run.trace, 0, 9,
                      signals=["state", "buffer", "v", "kn_small",
                               "kn_large", "cipher", "ready"]))
    print()
    print("expected: KN=(2,5), buffer 48D0 -> 2341 -> 048D, cipher CA02")
    assert run.vectors[0] == 0xCA02


if __name__ == "__main__":
    figs_5_to_7()
    print()
    fig_8()
