"""Quickstart: keys, the Codec facade, and the packet format.

Run with::

    python examples/quickstart.py
"""

import repro
from repro.core.key import Key
from repro.core.mhhea import MhheaCipher


def main() -> None:
    # --- key material ---------------------------------------------------
    # A key is up to 16 pairs of 3-bit integers.  Generate one from a
    # seed (or build from explicit pairs / parse the hex form).
    key = Key.generate(seed=2005)
    print("key:", key.to_hex())

    # --- raw cipher API ---------------------------------------------------
    cipher = MhheaCipher(key)
    message = cipher.encrypt(b"attack at dawn", seed=0xACE1)
    print(f"ciphertext: {len(message.vectors)} hiding vectors of 16 bits "
          f"({message.expansion:.1f}x expansion)")
    print("first vectors:", [hex(v) for v in message.vectors[:4]])
    assert cipher.decrypt(message) == b"attack at dawn"
    print("decrypted ok")

    # --- the facade ---------------------------------------------------------
    # A Codec binds key + engine + packet policy once; the link format
    # adds a header (algorithm, width, nonce, length) and a CRC-16 so a
    # receiver can parse, validate, and decrypt with the key alone.
    with repro.open_codec(key, engine="fast") as codec:
        packet = codec.encrypt(b"packet payload", nonce=0x5EED)
        print(f"packet: {len(packet)} bytes on the wire "
              f"(engine {codec.engine_name!r})")
        assert codec.decrypt(packet) == b"packet payload"
        # Chunked blobs scale the same call to payloads of any size.
        payload = bytes(range(256)) * 64
        blob = codec.seal_blob(payload)
        assert codec.open_blob(blob) == payload
        print(f"blob: {len(payload)} plaintext bytes -> {len(blob)} on the wire")
    print("packet + blob round trips ok")


if __name__ == "__main__":
    main()
