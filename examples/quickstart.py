"""Quickstart: keys, encryption, decryption, and the packet format.

Run with::

    python examples/quickstart.py
"""

from repro.core.key import Key
from repro.core.mhhea import MhheaCipher
from repro.core.stream import decrypt_packet, encrypt_packet


def main() -> None:
    # --- key material ---------------------------------------------------
    # A key is up to 16 pairs of 3-bit integers.  Generate one from a
    # seed (or build from explicit pairs / parse the hex form).
    key = Key.generate(seed=2005)
    print("key:", key.to_hex())

    # --- raw cipher API ---------------------------------------------------
    cipher = MhheaCipher(key)
    message = cipher.encrypt(b"attack at dawn", seed=0xACE1)
    print(f"ciphertext: {len(message.vectors)} hiding vectors of 16 bits "
          f"({message.expansion:.1f}x expansion)")
    print("first vectors:", [hex(v) for v in message.vectors[:4]])
    assert cipher.decrypt(message) == b"attack at dawn"
    print("decrypted ok")

    # --- packet format ------------------------------------------------------
    # The link format adds a header (algorithm, width, nonce, length) and
    # a CRC-16 so a receiver can parse, validate, and decrypt with the
    # key alone.
    packet = encrypt_packet(b"packet payload", key, nonce=0x5EED)
    print(f"packet: {len(packet)} bytes on the wire")
    assert decrypt_packet(packet, key) == b"packet payload"
    print("packet round trip ok")


if __name__ == "__main__":
    main()
