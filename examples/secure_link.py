"""A complete secure link over localhost: handshake, sessions, metrics.

Runs the `repro.net` echo server and client in one asyncio process,
streams a multi-packet message through the encrypted link, and verifies
the round trip is byte-exact.  Every moving part of DESIGN.md sections
4-7 is exercised: the hello handshake, per-direction derived keys, the
monotonic nonce schedule, automatic rekeying mid-stream, and the
per-session throughput counters.

Run with::

    PYTHONPATH=src python examples/secure_link.py
"""

import asyncio

from repro.core.key import Key
from repro.net import SecureLinkClient, SecureLinkServer, SessionConfig


async def main() -> None:
    key = Key.generate(seed=99)
    # A small rekey interval so even this short demo ratchets keys.
    config = SessionConfig(rekey_interval=8)

    message = b"".join(
        f"payload {i:03d}: the quick brown fox jumps over the lazy dog. ".encode()
        for i in range(40)
    )
    chunk = 96
    payloads = [message[i:i + chunk] for i in range(0, len(message), chunk)]
    print(f"message: {len(message)} bytes in {len(payloads)} packets")

    async with SecureLinkServer(key, port=0, config=config) as server:
        print(f"server listening on 127.0.0.1:{server.port}")
        async with SecureLinkClient(key, port=server.port,
                                    config=config) as client:
            replies = await client.send_all(payloads)
            echoed = b"".join(replies)
            assert echoed == message, "round trip was not byte-exact"
            print(f"round trip byte-exact: {len(echoed)} bytes echoed")
            print(f"client tx rekeys: {client.metrics.tx.rekeys}, "
                  f"rx rekeys: {client.metrics.rx.rekeys}")
            print()
            print(client.metrics.render("client"))
        print()
        print("server view:")
        print(server.metrics.render())


if __name__ == "__main__":
    asyncio.run(main())
