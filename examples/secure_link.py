"""A complete secure link over localhost: handshake, sessions, metrics.

Builds both endpoints from one `repro.api` codec (`repro.serve` /
`repro.connect`), runs the echo server and client in one asyncio process,
streams a multi-packet message through the encrypted link, and verifies
the round trip is byte-exact.  Every moving part of DESIGN.md sections
4-7 is exercised: the hello handshake, per-direction derived keys, the
monotonic nonce schedule, automatic rekeying mid-stream, and the
per-session throughput counters.

Run with::

    PYTHONPATH=src python examples/secure_link.py
"""

import asyncio

import repro


async def main() -> None:
    key = repro.Key.generate(seed=99)
    # One codec carries the whole link policy; a small rekey interval so
    # even this short demo ratchets keys.
    codec = repro.open_codec(key, engine="fast", rekey_interval=8)

    message = b"".join(
        f"payload {i:03d}: the quick brown fox jumps over the lazy dog. ".encode()
        for i in range(40)
    )
    chunk = 96
    payloads = [message[i:i + chunk] for i in range(0, len(message), chunk)]
    print(f"message: {len(message)} bytes in {len(payloads)} packets")

    async with repro.serve(codec, port=0) as server:
        print(f"server listening on 127.0.0.1:{server.port}")
        async with repro.connect(codec, port=server.port) as client:
            replies = await client.send_all(payloads)
            echoed = b"".join(replies)
            assert echoed == message, "round trip was not byte-exact"
            print(f"round trip byte-exact: {len(echoed)} bytes echoed")
            print(f"client tx rekeys: {client.metrics.tx.rekeys}, "
                  f"rx rekeys: {client.metrics.rx.rekeys}")
            print()
            print(client.metrics.render("client"))
        print()
        print("server view:")
        print(server.metrics.render())


if __name__ == "__main__":
    asyncio.run(main())
