"""Packet-level encryption over an unreliable link.

The paper pitches the micro-architecture "for packet-level encryption"
on high-speed networks.  This example pushes an IMIX-style packet mix
through the container format, corrupts some packets in flight, and shows
the receiver detecting damage via the CRC while decrypting the rest.

Run with::

    python examples/packet_link.py
"""

from repro.analysis.workloads import packet_payloads
from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.stream import decrypt_packet, encrypt_packet, split_packets
from repro.util.rng import make_rng


def main() -> None:
    key = Key.generate(seed=99)
    payloads = packet_payloads(20, seed=7)
    print(f"sending {len(payloads)} packets "
          f"({sum(len(p) for p in payloads)} payload bytes)")

    wire = b"".join(
        encrypt_packet(p, key, nonce=i + 1) for i, p in enumerate(payloads)
    )
    print(f"wire stream: {len(wire)} bytes")

    # Corrupt a few payload bytes in flight (headers left alone so the
    # framing survives; a broken header would also be caught).
    damaged = bytearray(wire)
    rng = make_rng(5)
    packets = split_packets(wire)
    offsets = []
    position = 0
    for packet in packets:
        offsets.append(position)
        position += len(packet)
    victims = sorted(rng.sample(range(len(packets)), 3))
    for victim in victims:
        where = offsets[victim] + len(packets[victim]) - 1
        damaged[where] ^= 0x40
    print(f"corrupting packets {victims} in flight")

    delivered = 0
    rejected = []
    for index, packet in enumerate(split_packets(bytes(damaged))):
        try:
            payload = decrypt_packet(packet, key)
        except CipherFormatError as exc:
            rejected.append((index, str(exc).split(":")[0]))
            continue
        assert payload == payloads[index]
        delivered += 1
    print(f"delivered {delivered} packets, rejected {len(rejected)}:")
    for index, reason in rejected:
        print(f"  packet {index}: {reason}")
    assert [i for i, _ in rejected] == victims


if __name__ == "__main__":
    main()
