"""Implement the micro-architecture with the built-in FPGA CAD flow.

Elaborates the structural MHHEA netlist, maps it to 4-input LUTs
(FlowMap), packs slices, anneals a placement, routes, runs timing, and
prints the Appendix-A style reports next to the paper's numbers.

Run with::

    python examples/fpga_flow.py [effort]
"""

import sys

from repro.analysis.literature import PAPER_REPORTS
from repro.fpga.flow import run_flow
from repro.hdl.netlist import netlist_stats
from repro.rtl.top import build_mhhea_top


def main(effort: float = 0.6) -> None:
    top = build_mhhea_top()
    stats = netlist_stats(top.circuit)
    print(f"elaborated netlist: {stats.n_gates} gates, {stats.n_dffs} FFs, "
          f"{stats.n_tbufs} TBUFs, {stats.n_io_bits} IO bits")
    print(f"running flow (effort={effort}) ...\n")

    result = run_flow(top.circuit, seed=7, effort=effort)
    print(result.summary.render())
    print()
    print(result.timing_report.render())
    print()
    print("critical path:")
    for step in result.timing.critical_path:
        print("  ", step)
    print()
    print(result.floorplan())
    print()
    print("paper reference: "
          f"{PAPER_REPORTS['n_slices']} slices, "
          f"{PAPER_REPORTS['n_luts']} LUTs, "
          f"{PAPER_REPORTS['n_ffs']} FFs, "
          f"{PAPER_REPORTS['n_tbufs']} TBUFs, "
          f"{PAPER_REPORTS['min_period_ns']} ns, "
          f"{PAPER_REPORTS['max_frequency_mhz']} MHz")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.6)
