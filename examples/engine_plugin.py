"""Registering a custom cipher engine and driving it through the facade.

The engine registry (`repro.core.engines`) treats implementations as
plugins: anything that computes the paper's embed/extract function can
be registered under a name and then selected everywhere an engine can
be — `repro.api.Codec`, the secure link, the CLI's ``--engine``.  This
example registers an instrumented wrapper around the fast engine,
proves it wire-compatible with the built-ins, and shows the eager
validation for unknown names.

Run with::

    PYTHONPATH=src python examples/engine_plugin.py
"""

import repro
from repro.core.engines import FastEngine


class CountingEngine(FastEngine):
    """The fast engine plus embed/extract call counters.

    A realistic plugin would swap the arithmetic (a C extension, a GPU
    batch kernel, an FPGA offload shim); the contract is only that the
    result is byte-identical — the registry models *how* the cipher
    runs, never *what* it computes.
    """

    name = "counting"
    embeds = 0
    extracts = 0

    def embed_bytes(self, key, algorithm, params, data, source):
        CountingEngine.embeds += 1
        return super().embed_bytes(key, algorithm, params, data, source)

    def extract_bytes(self, key, algorithm, params, vectors, n_bits):
        CountingEngine.extracts += 1
        return super().extract_bytes(key, algorithm, params, vectors, n_bits)


def main() -> None:
    repro.register_engine("counting", CountingEngine)
    print("registered engines:", ", ".join(repro.registered_engines()))

    key = repro.Key.generate(seed=2005, n_pairs=16)
    payload = b"plugin traffic " * 64

    with repro.open_codec(key, engine="counting") as codec:
        packet = codec.encrypt(payload, nonce=0x5EED)
        assert codec.decrypt(packet) == payload
    print(f"counting engine ran: {CountingEngine.embeds} embed(s), "
          f"{CountingEngine.extracts} extract(s)")

    # Wire-compatible with the built-ins — a packet is a packet.
    for name in ("reference", "fast"):
        with repro.open_codec(key, engine=name) as other:
            assert other.encrypt(payload, nonce=0x5EED) == packet
            assert other.decrypt(packet) == payload
    print("byte-identical to the reference and fast engines")

    # Unknown names fail eagerly, naming what *is* registered.
    try:
        repro.open_codec(key, engine="turbo")
    except repro.UnknownEngineError as exc:
        print(f"eager validation: {exc}")


if __name__ == "__main__":
    main()
